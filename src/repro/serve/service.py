"""The serving core: admission, cache, journal, supervised execution.

:class:`AgreementService` is the HTTP-free heart of ``repro serve`` — the
piece property tests drive directly and the asyncio frontend
(:mod:`repro.serve.http`) wraps.  Its lifecycle makes the
self-stabilization contract concrete:

admission
    :meth:`admit` reuses ``repro validate``'s dry-run — registry resolution
    plus :func:`~repro.api.planner.plan_run` — so malformed or unsafe
    requests are rejected **before** they consume queue space or journal
    lines, with the planner's own error text.

content-addressed serving
    :meth:`lookup` keys the result cache by
    :func:`~repro.serve.cache.request_digest`; a hit returns the stored
    :meth:`~repro.api.request.RunReport.outcome_dict` with **no**
    execution.  Identical queries from a million users cost one simulation.

durable execution
    :meth:`accept` journals the request before it runs; :meth:`run_job`
    executes it under a :class:`~repro.runtime.supervision.Supervisor`
    (bounded seeded retries around worker death — the chaos
    ``serve-worker-death`` injection exercises this), stores the outcome,
    and journals the completion.  Journal failures are fail-stop: the
    service records its :attr:`fault` and refuses further work rather than
    accepting requests it cannot make durable.

recovery
    :meth:`start` replays the journal (completed → cache warm-start,
    accepted-without-completion → :attr:`pending` re-execution), compacts
    the log (torn crash tails repaired, duplicate completions dropped *and
    counted*), and reopens it for append.  Because every run is a pure
    function of ``(request, seed)``, a crashed-and-recovered service serves
    outcomes byte-identical to one that never crashed — the property the
    chaos suite pins.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..api.facade import execute
from ..api.planner import plan_run
from ..api.request import RunRequest
from ..runtime.chaos import current_chaos
from ..runtime.errors import (CheckpointWriteError, ConfigurationError,
                              ReproError, WorkerDiedError)
from ..runtime.supervision import RetryPolicy, Supervisor
from .cache import ResultCache, request_digest
from .journal import ServeJournal
from .metrics import ServeMetrics


class AdmissionError(ConfigurationError):
    """A request failed the pre-enqueue dry-run (HTTP 400, never enqueued)."""


class ServiceUnavailableError(ReproError):
    """The service is faulted or draining and cannot take the request (503)."""


@dataclass
class ServeResult:
    """One served request: its cache key, outcome, and how it was produced."""

    digest: str
    outcome: Dict[str, Any]
    cached: bool
    engine: str = ""
    seconds: float = 0.0
    resilience: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"id": self.digest, "cached": self.cached,
                                "outcome": self.outcome}
        if self.engine:
            data["engine"] = self.engine
        if self.resilience:
            data["resilience"] = list(self.resilience)
        return data


class AgreementService:
    """Admission, caching, journaling, and supervised execution — no HTTP."""

    def __init__(self, cache: Optional[ResultCache] = None,
                 journal: Optional[ServeJournal] = None,
                 metrics: Optional[ServeMetrics] = None,
                 retry: Optional[RetryPolicy] = None) -> None:
        self.cache = cache if cache is not None else ResultCache()
        self.journal = journal
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=3, base_delay=0.01)
        #: The first fatal fault (a journal append failure) — fail-stop.
        self.fault: Optional[BaseException] = None
        #: Accepted-but-unfinished jobs recovered by the last :meth:`start`.
        self.pending: List[Tuple[str, RunRequest]] = []
        #: The last recovery summary (journal replay accounting).
        self.last_recovery: Dict[str, Any] = {}
        self._jobs = 0
        self._jobs_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> Dict[str, Any]:
        """Recover from the journal (if any) and open it for append.

        Returns the recovery summary: completed entries warmed into the
        cache, pending requests re-queued on :attr:`pending`, duplicate
        completions and torn tails counted — never silently merged.
        """
        if self.journal is None:
            self.last_recovery = {}
            return {}
        replay = self.journal.replay()
        # Compaction before reopening is load-bearing: appending after a
        # torn tail would concatenate onto the partial line and corrupt it.
        self.journal.compact(replay)
        self.journal.open()
        for digest, outcome in replay.completed.items():
            self.cache.warm(digest, outcome)
        self.pending = list(replay.pending)
        self.last_recovery = replay.summary()
        self.metrics.increment("journal_replays_total")
        if replay.duplicates:
            self.metrics.increment("journal_duplicate_completions_total",
                                   replay.duplicates)
        if replay.torn_tail:
            self.metrics.increment("journal_torn_tails_repaired_total")
        return self.last_recovery

    def close(self) -> None:
        """Close the journal; a clean shutdown compacts it afterwards."""
        if self.journal is not None:
            self.journal.close()

    def compact_journal(self) -> Dict[str, Any]:
        """Compact the (closed) journal — the clean-shutdown checkpoint."""
        if self.journal is None:
            return {}
        return self.journal.compact()

    # -- the serving path ----------------------------------------------------
    def admit(self, request: RunRequest) -> str:
        """Dry-run *request* through the registries and planner; return its key.

        Exactly what ``repro validate`` checks, run **before** anything is
        enqueued or journaled: unknown protocols/adversaries, bad
        parameters, and unsafe instance shapes are turned away at the door
        with the resolver's own message.
        """
        if self.fault is not None:
            raise ServiceUnavailableError(
                f"service is faulted ({type(self.fault).__name__}: "
                f"{self.fault}); restart to recover from the journal")
        try:
            spec, config, faulty, adversary = request.resolve_parts()
            plan_run(request, spec, config, faulty, adversary)
        except (ReproError, ValueError, TypeError) as exc:
            self.metrics.increment("admission_rejects_total")
            raise AdmissionError(str(exc)) from exc
        return request_digest(request)

    def lookup(self, request: RunRequest) -> Tuple[str, Optional[Dict[str,
                                                                      Any]]]:
        """The request's digest and its cached outcome, if one exists."""
        digest = request_digest(request)
        return digest, self.cache.get(digest)

    def accept(self, digest: str, request: RunRequest) -> None:
        """Journal the admitted request — durable intent, before execution."""
        self.metrics.increment("requests_total")
        if self.journal is None:
            return
        try:
            self.journal.accepted(digest, request)
        except CheckpointWriteError as exc:
            self.fault = exc
            raise

    def cached_result(self, digest: str) -> Optional[ServeResult]:
        """Serve *digest* from the cache, counting the request; ``None`` = miss."""
        started = time.perf_counter()
        entry = self.cache.get(digest)
        if entry is None:
            return None
        self.metrics.increment("requests_total")
        self.metrics.observe_latency("cache", time.perf_counter() - started)
        return ServeResult(digest=digest, outcome=entry, cached=True,
                           engine="cache",
                           seconds=time.perf_counter() - started)

    def run_job(self, digest: str, request: RunRequest) -> ServeResult:
        """Execute one accepted request under supervision and record it."""
        with self._jobs_lock:
            job_index = self._jobs
            self._jobs += 1
        started = time.perf_counter()

        def worker() -> Any:
            controller = current_chaos()
            if controller is not None and controller.take("serve-job",
                                                          index=job_index):
                raise WorkerDiedError(
                    f"chaos: serve worker died executing job {job_index}")
            return execute(request)

        supervisor = Supervisor([("serve-worker", worker)],
                                retry=self.retry, key=f"serve:{digest}")
        try:
            report, trail = supervisor.run()
        except Exception:
            self.metrics.increment("execution_failures_total")
            raise
        elapsed = time.perf_counter() - started
        outcome = report.outcome_dict()
        self.cache.put(digest, outcome)
        if self.journal is not None:
            try:
                self.journal.completed(digest, outcome)
            except CheckpointWriteError as exc:
                self.fault = exc
                raise
        self.metrics.increment("executions_total")
        self.metrics.observe_latency(report.engine_resolved, elapsed)
        resilience = list(report.metadata.get("resilience", ())) + trail
        self.metrics.observe_resilience(resilience)
        return ServeResult(digest=digest, outcome=outcome, cached=False,
                           engine=report.engine_resolved, seconds=elapsed,
                           resilience=resilience)

    def handle(self, request: RunRequest) -> ServeResult:
        """The whole synchronous path: admit → cache → journal → execute."""
        digest = self.admit(request)
        cached = self.cached_result(digest)
        if cached is not None:
            return cached
        self.accept(digest, request)
        return self.run_job(digest, request)

    def run_pending(self) -> List[ServeResult]:
        """Execute every journal-recovered pending job, in acceptance order.

        They were journaled as accepted before the crash, so they are *not*
        re-journaled — only executed and completed.
        """
        results = []
        pending, self.pending = self.pending, []
        for digest, request in pending:
            results.append(self.run_job(digest, request))
        return results
