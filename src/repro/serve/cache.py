"""The content-addressed result cache: one simulation per distinct query.

Every agreement run is a pure function of ``(request, seed)`` and requests
round-trip through canonical JSON, so a million identical user queries need
exactly one execution.  The cache key is :func:`request_digest` — the
SHA-256 of the request's canonical JSON **minus its engine field**: the
engine is execution-side (the planner may resolve the same request to
``batched`` here and ``fast`` there) and
:meth:`~repro.api.request.RunReport.outcome_dict` is engine-independent, so
two requests that differ only in engine choice share one entry.  What the
cache stores *is* the ``outcome_dict`` — the serialized outcome alone,
byte-stable across substrates.

The cache is **best-effort by design**: a failed store (disk full, a chaos
``cache-write-fail`` injection) must never fail the request it was caching —
the result is still returned, the failure is counted, and any torn entry
file left behind is detected on read (entries are parsed and shape-checked;
garbage reads as a miss and is deleted).  Correctness never depends on the
cache; only latency does.

Disk layout: one ``<digest>.json`` per entry under ``cache_dir``, written
atomically (temp file + ``os.replace``) on the happy path, so a ``kill -9``
mid-store leaves either the old state or the new — except under chaos,
which deliberately leaves the torn file a real crash could.

The footprint is boundable: ``max_entries`` caps the cache at N entries
with least-recently-used eviction (``get``/``peek``/``put`` all refresh
recency).  Eviction is total — the in-memory entry goes **and** its disk
file is unlinked — so a capped cache never resurrects evicted results on
restart, and the disk directory's size tracks the cap instead of growing
without bound.  Evictions are counted in :meth:`ResultCache.stats` and
surface on the service's ``/metrics`` endpoint.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from typing import Any, Dict, Optional

from ..runtime.errors import ConfigurationError

from ..api.request import RunRequest
from ..runtime.chaos import current_chaos

#: Request fields that describe *how* a run executes, not *what* it computes.
#: Excluded from the cache key so engine choice never fragments the cache.
EXECUTION_SIDE_FIELDS = ("engine",)


def request_digest(request: RunRequest) -> str:
    """The cache key of *request*: SHA-256 of its canonical outcome-relevant JSON.

    Covers everything that determines the outcome — protocol and parameters,
    instance shape, faulty set or scenario, adversary, domain, **seed** —
    and drops the engine field, which only selects the substrate.
    """
    data = request.to_dict()
    for name in EXECUTION_SIDE_FIELDS:
        data.pop(name, None)
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """An in-memory outcome cache with optional durable disk backing.

    ``get`` / ``put`` address entries by :func:`request_digest` values.
    With a ``cache_dir``, every store also lands as ``<digest>.json`` and
    misses fall through to disk — so a restarted service warm-starts from
    whatever previous sessions (or a journal replay) persisted.  With a
    ``max_entries`` cap, the least-recently-used entry (memory *and* disk
    file) is evicted whenever an insert would exceed it.
    """

    def __init__(self, cache_dir: Optional[str] = None,
                 max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ConfigurationError(
                f"cache max_entries must be positive (or None for "
                f"unbounded), got {max_entries}")
        self.cache_dir = cache_dir
        self.max_entries = max_entries
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.write_failures = 0
        self.evictions = 0
        self._stores = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _path(self, digest: str) -> str:
        return os.path.join(self.cache_dir, f"{digest}.json")

    def _load_from_disk(self, digest: str) -> Optional[Dict[str, Any]]:
        if not self.cache_dir:
            return None
        path = self._path(digest)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            # A torn entry (crash or chaos mid-store) is not a cache state:
            # drop it and treat the lookup as a miss — the run re-executes
            # and the store is retried with a fresh result.
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            return None
        if not isinstance(entry, dict) or "decisions" not in entry:
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            return None
        return entry

    def _insert(self, digest: str, entry: Dict[str, Any]) -> None:
        """Land *entry* as most-recent and enforce the ``max_entries`` cap.

        Every in-memory insert — a ``put``, or a disk fall-through in
        ``get``/``peek`` — goes through here, so the cap holds no matter
        which path populated the entry.  Eviction removes the LRU entry's
        disk file too: a capped cache must not regrow past its cap from
        disk on the next restart.
        """
        self._entries[digest] = entry
        self._entries.move_to_end(digest)
        if self.max_entries is None:
            return
        while len(self._entries) > self.max_entries:
            victim, _ = self._entries.popitem(last=False)
            self.evictions += 1
            if self.cache_dir:
                try:
                    os.unlink(self._path(victim))
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass

    def _lookup(self, digest: str) -> Optional[Dict[str, Any]]:
        entry = self._entries.get(digest)
        if entry is not None:
            self._entries.move_to_end(digest)
            return entry
        entry = self._load_from_disk(digest)
        if entry is not None:
            self._insert(digest, entry)
        return entry

    def get(self, digest: str) -> Optional[Dict[str, Any]]:
        """The cached outcome for *digest*, counting the hit or miss."""
        entry = self._lookup(digest)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def peek(self, digest: str) -> Optional[Dict[str, Any]]:
        """Like :meth:`get` but without touching the hit/miss counters."""
        return self._lookup(digest)

    def put(self, digest: str, outcome: Dict[str, Any]) -> bool:
        """Store *outcome* under *digest*; ``False`` when the disk write failed.

        The in-memory entry always lands (this process keeps serving the
        result either way); only durability is best-effort.  A failed store
        increments :attr:`write_failures` and leaves the service running —
        the chaos ``cache-write-fail`` injection exercises exactly this
        path, torn entry file included.
        """
        self._insert(digest, outcome)
        if not self.cache_dir:
            return True
        store_index = self._stores
        self._stores += 1
        path = self._path(digest)
        tmp = f"{path}.tmp.{os.getpid()}"
        controller = current_chaos()
        try:
            if controller is not None and controller.take(
                    "cache-write", index=store_index):
                # Leave the torn artifact a real mid-write crash would:
                # readers must treat it as a miss, not an answer.
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(json.dumps(outcome)[:20])
                raise OSError("chaos: simulated cache store failure")
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(outcome, handle, sort_keys=True)
            os.replace(tmp, path)
            return True
        except OSError:
            self.write_failures += 1
            if os.path.exists(tmp):
                try:
                    os.unlink(tmp)
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
            return False

    def warm(self, digest: str, outcome: Dict[str, Any]) -> None:
        """Seed an entry during recovery without counting hits or misses."""
        if self.peek(digest) is None:
            self.put(digest, outcome)

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses,
                "write_failures": self.write_failures,
                "evictions": self.evictions}
