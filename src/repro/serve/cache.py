"""The content-addressed result cache: one simulation per distinct query.

Every agreement run is a pure function of ``(request, seed)`` and requests
round-trip through canonical JSON, so a million identical user queries need
exactly one execution.  The cache key is :func:`request_digest` — the
SHA-256 of the request's canonical JSON **minus its engine field**: the
engine is execution-side (the planner may resolve the same request to
``batched`` here and ``fast`` there) and
:meth:`~repro.api.request.RunReport.outcome_dict` is engine-independent, so
two requests that differ only in engine choice share one entry.  What the
cache stores *is* the ``outcome_dict`` — the serialized outcome alone,
byte-stable across substrates.

The cache is **best-effort by design**: a failed store (disk full, a chaos
``cache-write-fail`` injection) must never fail the request it was caching —
the result is still returned, the failure is counted, and any torn entry
file left behind is detected on read (entries are parsed and shape-checked;
garbage reads as a miss and is deleted).  Correctness never depends on the
cache; only latency does.

Disk layout: one ``<digest>.json`` per entry under ``cache_dir``, written
atomically (temp file + ``os.replace``) on the happy path, so a ``kill -9``
mid-store leaves either the old state or the new — except under chaos,
which deliberately leaves the torn file a real crash could.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional

from ..api.request import RunRequest
from ..runtime.chaos import current_chaos

#: Request fields that describe *how* a run executes, not *what* it computes.
#: Excluded from the cache key so engine choice never fragments the cache.
EXECUTION_SIDE_FIELDS = ("engine",)


def request_digest(request: RunRequest) -> str:
    """The cache key of *request*: SHA-256 of its canonical outcome-relevant JSON.

    Covers everything that determines the outcome — protocol and parameters,
    instance shape, faulty set or scenario, adversary, domain, **seed** —
    and drops the engine field, which only selects the substrate.
    """
    data = request.to_dict()
    for name in EXECUTION_SIDE_FIELDS:
        data.pop(name, None)
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """An in-memory outcome cache with optional durable disk backing.

    ``get`` / ``put`` address entries by :func:`request_digest` values.
    With a ``cache_dir``, every store also lands as ``<digest>.json`` and
    misses fall through to disk — so a restarted service warm-starts from
    whatever previous sessions (or a journal replay) persisted.
    """

    def __init__(self, cache_dir: Optional[str] = None) -> None:
        self.cache_dir = cache_dir
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)
        self._entries: Dict[str, Dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        self.write_failures = 0
        self._stores = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _path(self, digest: str) -> str:
        return os.path.join(self.cache_dir, f"{digest}.json")

    def _load_from_disk(self, digest: str) -> Optional[Dict[str, Any]]:
        if not self.cache_dir:
            return None
        path = self._path(digest)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            # A torn entry (crash or chaos mid-store) is not a cache state:
            # drop it and treat the lookup as a miss — the run re-executes
            # and the store is retried with a fresh result.
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            return None
        if not isinstance(entry, dict) or "decisions" not in entry:
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            return None
        return entry

    def get(self, digest: str) -> Optional[Dict[str, Any]]:
        """The cached outcome for *digest*, counting the hit or miss."""
        entry = self._entries.get(digest)
        if entry is None:
            entry = self._load_from_disk(digest)
            if entry is not None:
                self._entries[digest] = entry
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def peek(self, digest: str) -> Optional[Dict[str, Any]]:
        """Like :meth:`get` but without touching the hit/miss counters."""
        entry = self._entries.get(digest)
        if entry is None:
            entry = self._load_from_disk(digest)
            if entry is not None:
                self._entries[digest] = entry
        return entry

    def put(self, digest: str, outcome: Dict[str, Any]) -> bool:
        """Store *outcome* under *digest*; ``False`` when the disk write failed.

        The in-memory entry always lands (this process keeps serving the
        result either way); only durability is best-effort.  A failed store
        increments :attr:`write_failures` and leaves the service running —
        the chaos ``cache-write-fail`` injection exercises exactly this
        path, torn entry file included.
        """
        self._entries[digest] = outcome
        if not self.cache_dir:
            return True
        store_index = self._stores
        self._stores += 1
        path = self._path(digest)
        tmp = f"{path}.tmp.{os.getpid()}"
        controller = current_chaos()
        try:
            if controller is not None and controller.take(
                    "cache-write", index=store_index):
                # Leave the torn artifact a real mid-write crash would:
                # readers must treat it as a miss, not an answer.
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(json.dumps(outcome)[:20])
                raise OSError("chaos: simulated cache store failure")
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(outcome, handle, sort_keys=True)
            os.replace(tmp, path)
            return True
        except OSError:
            self.write_failures += 1
            if os.path.exists(tmp):
                try:
                    os.unlink(tmp)
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
            return False

    def warm(self, digest: str, outcome: Dict[str, Any]) -> None:
        """Seed an entry during recovery without counting hits or misses."""
        if self.peek(digest) is None:
            self.put(digest, outcome)

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses,
                "write_failures": self.write_failures}
