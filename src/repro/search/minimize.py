"""Counterexample shrinking: the smallest request that still misbehaves.

A raw search hit usually carries accidental complexity — extra faulty
processors, a wide corruption window, a bigger domain than the failure
needs.  :func:`minimize_counterexample` greedily removes it, delta-debugging
style: propose one simplification at a time, re-execute the candidate
(deterministic — the request carries its seed), and keep it only if the
objective still registers a violation.  The loop runs to a fixpoint, so the
result is 1-minimal with respect to the moves below:

* drop each faulty processor (smaller faulty sets first);
* shrink each integer adversary parameter (halving, then decrementing —
  corruption windows, outage lengths, victim counts all shrink this way);
* shrink the value domain to its two essential members (the default value
  and the values the counterexample actually mentions).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterator, Optional, Tuple

from ..api.facade import execute
from ..api.request import RunReport, RunRequest
from ..core.values import DEFAULT_VALUE
from .objectives import Objective, get_objective


def _still_violates(candidate: RunRequest,
                    objective: Objective) -> Optional[RunReport]:
    try:
        report = execute(candidate)
    # repro-lint: waive[errors/broad-except] -- shrinking probe: a
    # candidate that no longer validates or runs is just rejected, and
    # the original (still-failing) witness is always kept
    except Exception:
        return None
    return report if objective.violated(report) else None


def _faulty_shrinks(request: RunRequest) -> Iterator[RunRequest]:
    faulty = request.faulty or ()
    for pid in faulty:
        yield replace(request,
                      faulty=tuple(p for p in faulty if p != pid))


def _param_shrinks(request: RunRequest) -> Iterator[RunRequest]:
    for name, value in sorted(request.adversary_params.items()):
        if not isinstance(value, int) or value <= 1:
            continue
        for smaller in dict.fromkeys((value // 2, value - 1)):
            if 1 <= smaller < value:
                params = dict(request.adversary_params)
                params[name] = smaller
                yield replace(request, adversary_params=params)


def _domain_shrinks(request: RunRequest) -> Iterator[RunRequest]:
    if len(request.domain) <= 2:
        return
    essential = {DEFAULT_VALUE, request.initial_value}
    smaller = tuple(v for v in request.domain if v in essential)
    if len(smaller) >= 2 and len(smaller) < len(request.domain):
        yield replace(request, domain=smaller)


def minimize_counterexample(request: RunRequest,
                            objective: str = "agreement_violation",
                            ) -> Tuple[RunRequest, RunReport]:
    """Shrink *request* while it keeps violating *objective*.

    Returns the minimized request and the report of its (re-verified)
    execution.  Raises :class:`ValueError` if the starting request does not
    violate the objective — a minimizer fed a healthy run would "shrink" it
    to an arbitrary healthy run.
    """
    target = get_objective(objective)
    report = _still_violates(request, target)
    if report is None:
        raise ValueError(
            f"request does not violate {target.name!r}; nothing to minimize")
    current, current_report = request, report
    improved = True
    while improved:
        improved = False
        for candidate in (*_faulty_shrinks(current),
                          *_param_shrinks(current),
                          *_domain_shrinks(current)):
            candidate_report = _still_violates(candidate, target)
            if candidate_report is not None:
                current, current_report = candidate, candidate_report
                improved = True
                break  # restart the move list from the smaller request
    return current, current_report
