"""Pin counterexamples as regression fixtures the test suite replays.

A minimized counterexample is only worth what its reproducibility: this
module freezes one as a small JSON file — the exact
:class:`~repro.api.request.RunRequest` plus the outcome it must reproduce —
and replays it later, asserting the run still violates (or still costs) what
it did when pinned.  ``tests/test_pinned_scenarios.py`` parametrizes over
every file in ``tests/pinned_scenarios/``, so a pinned hit becomes a
permanent tripwire: any change that silently repairs *or re-breaks* the
behaviour fails the suite and demands a deliberate re-pin.

Fixture format::

    {"kind": "repro-pinned-scenario", "version": 1,
     "objective": "agreement_violation",
     "request": { ...RunRequest.to_dict()... },
     "expect": {"agreement": false, "validity": true,
                "decisions": {"0": 1, "1": 0}, "rounds": 2}}
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Tuple

from ..api.facade import execute
from ..api.request import RunReport, RunRequest
from ..runtime.errors import ConfigurationError

PIN_KIND = "repro-pinned-scenario"
PIN_VERSION = 1


def scenario_name(request: RunRequest) -> str:
    """A deterministic, filesystem-safe name for a pinned request."""
    faulty = "-".join(str(p) for p in (request.faulty or ())) or "none"
    return (f"{request.protocol}-n{request.n}t{request.t}-"
            f"{request.adversary}-f{faulty}-seed{request.seed}")


def pin_scenario(request: RunRequest, report: RunReport, directory: str,
                 objective: str = "agreement_violation") -> str:
    """Write the fixture for ``(request, report)`` and return its path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, scenario_name(request) + ".json")
    payload: Dict[str, Any] = {
        "kind": PIN_KIND,
        "version": PIN_VERSION,
        "objective": objective,
        "request": request.to_dict(),
        "expect": {
            "agreement": report.agreement,
            "validity": report.validity,
            "decisions": {str(pid): value
                          for pid, value in sorted(report.decisions.items())},
            "rounds": report.rounds,
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_pinned(path: str) -> Tuple[RunRequest, Dict[str, Any]]:
    """Read a fixture back as ``(request, expectation)``."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{path} is not valid JSON: {exc}") from None
    if (not isinstance(payload, dict)
            or payload.get("kind") != PIN_KIND):
        raise ConfigurationError(
            f"{path} is not a pinned scenario (expected kind {PIN_KIND!r})")
    if payload.get("version") != PIN_VERSION:
        raise ConfigurationError(
            f"{path} is a version {payload.get('version')} fixture; this "
            f"build reads version {PIN_VERSION}")
    return (RunRequest.from_dict(payload["request"]),
            dict(payload.get("expect", {})))


def pinned_paths(directory: str) -> List[str]:
    """Every fixture file under *directory*, sorted; empty if absent."""
    if not os.path.isdir(directory):
        return []
    return sorted(os.path.join(directory, name)
                  for name in os.listdir(directory)
                  if name.endswith(".json"))


def replay_pinned(path: str) -> Tuple[RunReport, Dict[str, Any], List[str]]:
    """Re-execute a fixture; returns ``(report, expect, mismatches)``.

    The mismatch list is empty exactly when the replay reproduced the pinned
    outcome — agreement verdict, validity verdict, per-processor decisions,
    and round count all equal.
    """
    request, expect = load_pinned(path)
    report = execute(request)
    mismatches: List[str] = []
    if "agreement" in expect and report.agreement != expect["agreement"]:
        mismatches.append(
            f"agreement: pinned {expect['agreement']}, got {report.agreement}")
    if "validity" in expect and report.validity != expect["validity"]:
        mismatches.append(
            f"validity: pinned {expect['validity']}, got {report.validity}")
    if "decisions" in expect:
        pinned = {int(pid): value
                  for pid, value in expect["decisions"].items()}
        if report.decisions != pinned:
            mismatches.append(
                f"decisions: pinned {pinned}, got {report.decisions}")
    if "rounds" in expect and report.rounds != expect["rounds"]:
        mismatches.append(
            f"rounds: pinned {expect['rounds']}, got {report.rounds}")
    return report, expect, mismatches
