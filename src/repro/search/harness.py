"""The search driver: spend the budget, keep score, stop on blood.

:func:`run_search` turns a :class:`~repro.search.space.SearchSpec` into
batches of seeded :class:`~repro.api.request.RunRequest` candidates, streams
them through :func:`repro.api.facade.iter_execute` (any executor backend —
candidates are independent, so a pool parallelizes a search for free), and
folds each finished report into a running best under the spec's objective.

Candidate *i* always executes with seed
:func:`derive_seed(sweep_seed, i) <repro.api.request.derive_seed>` — the
sweep machinery's positional rule — so a search is exactly reproducible from
``(spec, sweep_seed)`` and every reported hit replays outside the harness
with nothing but its request.

For violation objectives the harness stops at the first confirmed hit
(``stop_on_violation=False`` spends the whole budget and collects them all);
cost objectives always run to budget exhaustion and report the extremal
execution found.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Iterator, List, Optional, Tuple

from ..api.facade import iter_execute
from ..api.executors import ExecutorSpec
from ..api.request import RunReport, RunRequest, derive_seed
from .objectives import Objective, get_objective
from .space import SearchSpec, mutate_viable, sample_viable

#: Candidates evaluated per generation by the ``anneal`` strategy.
GENERATION_SIZE = 16


@dataclass(frozen=True)
class Evaluation:
    """One scored execution: the candidate, its report, and its score."""

    index: int
    request: RunRequest
    report: RunReport
    score: float


@dataclass
class SearchResult:
    """Everything a search learned."""

    spec: SearchSpec
    objective: Objective
    evaluated: int = 0
    #: The highest-scoring execution (ties: first found).
    best: Optional[Evaluation] = None
    #: Every violation hit (empty for cost objectives).
    violations: List[Evaluation] = field(default_factory=list)
    #: True when a violation objective stopped before exhausting the budget.
    stopped_early: bool = False

    @property
    def found(self) -> bool:
        return bool(self.violations)


def _seeded(candidates: List[RunRequest], start: int,
            sweep_seed: int) -> List[RunRequest]:
    return [replace(candidate, seed=derive_seed(sweep_seed, start + i))
            for i, candidate in enumerate(candidates)]


def _evaluate(candidates: List[RunRequest], start: int, result: SearchResult,
              executor: ExecutorSpec) -> Iterator[Evaluation]:
    """Run one batch, folding each report into *result* as it lands."""
    seeded = _seeded(candidates, start, result.spec.sweep_seed)
    for offset, report in iter_execute(seeded, executor=executor):
        evaluation = Evaluation(index=start + offset,
                                request=seeded[offset], report=report,
                                score=result.objective.score(report))
        result.evaluated += 1
        if result.best is None or evaluation.score > result.best.score:
            result.best = evaluation
        if result.objective.violated(report):
            result.violations.append(evaluation)
        yield evaluation


def run_search(spec: SearchSpec, executor: ExecutorSpec = "serial",
               stop_on_violation: bool = True) -> SearchResult:
    """Hunt the spec's grid and return what the budget uncovered.

    *executor* is any :mod:`repro.api.executors` backend; the default is
    serial — searches are usually bounded small, and serial keeps them
    single-process.  Determinism does not depend on the choice: candidate
    seeds are positional.
    """
    objective = get_objective(spec.objective)
    result = SearchResult(spec=spec, objective=objective)
    rng = random.Random(spec.sweep_seed)
    if spec.strategy == "random":
        _run_random(spec, result, rng, executor, stop_on_violation)
    else:
        _run_anneal(spec, result, rng, executor, stop_on_violation)
    return result


def _stop(result: SearchResult, stop_on_violation: bool) -> bool:
    if stop_on_violation and result.found:
        result.stopped_early = result.evaluated < result.spec.budget
        return True
    return False


def _draw(spec: SearchSpec, rng: random.Random,
          count: int) -> List[RunRequest]:
    batch: List[RunRequest] = []
    for _ in range(count):
        candidate = sample_viable(spec, rng)
        if candidate is None:
            break  # the grid has (almost) no viable cells; stop drawing
        batch.append(candidate)
    return batch


def _run_random(spec: SearchSpec, result: SearchResult, rng: random.Random,
                executor: ExecutorSpec, stop_on_violation: bool) -> None:
    spent = 0
    while spent < spec.budget:
        batch = _draw(spec, rng, min(GENERATION_SIZE, spec.budget - spent))
        if not batch:
            return
        for _ in _evaluate(batch, spent, result, executor):
            if _stop(result, stop_on_violation):
                return
        spent += len(batch)


def _run_anneal(spec: SearchSpec, result: SearchResult, rng: random.Random,
                executor: ExecutorSpec, stop_on_violation: bool) -> None:
    """Greedy mutation of the incumbent with a cooling acceptance rule."""
    incumbent: Optional[Evaluation] = None
    spent = 0
    while spent < spec.budget:
        room = min(GENERATION_SIZE, spec.budget - spent)
        batch: List[RunRequest] = []
        if incumbent is not None:
            # Three quarters neighbors of the incumbent, a quarter fresh
            # random candidates so the search never fixates on one basin.
            for _ in range(max(1, (room * 3) // 4)):
                neighbor = mutate_viable(spec, incumbent.request, rng)
                if neighbor is not None:
                    batch.append(neighbor)
        batch.extend(_draw(spec, rng, room - len(batch)))
        if not batch:
            return
        champion: Optional[Evaluation] = None
        for evaluation in _evaluate(batch, spent, result, executor):
            if champion is None or evaluation.score > champion.score:
                champion = evaluation
            if _stop(result, stop_on_violation):
                return
        spent += len(batch)
        if champion is None:
            return
        # Cooling acceptance: early on, a worse champion may still become
        # the incumbent (escape a plateau); late, only improvements move.
        temperature = max(0.0, 1.0 - spent / spec.budget)
        if (incumbent is None or champion.score >= incumbent.score
                or rng.random() < temperature * 0.5):
            incumbent = champion
