"""What the search is hunting for: scoring functions over finished runs.

An :class:`Objective` turns a :class:`~repro.api.request.RunReport` into a
score the search maximizes.  Two kinds exist:

* **Violation objectives** (``is_violation=True``): the score is positive
  exactly when the run broke a safety property the theorems promise under
  ``n ≥ 3t + 1`` — disagreement between correct processors, or a validity
  breach.  The search can stop at the first hit and hand it to the
  minimizer.
* **Cost objectives**: the score is a resource metric (rounds, messages,
  computation units) and the search reports the costliest execution the
  budget uncovered — a worst-case probe, never "satisfied".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ..api.request import RunReport
from ..runtime.errors import ConfigurationError


@dataclass(frozen=True)
class Objective:
    """One search target: a name, a scorer, and whether a hit is a violation."""

    name: str
    doc: str
    scorer: Callable[[RunReport], float]
    #: True when a positive score is a *safety violation* worth minimizing
    #: and pinning (the search may stop early); False for cost extremum
    #: objectives that always spend the whole budget.
    is_violation: bool = False

    def score(self, report: RunReport) -> float:
        return float(self.scorer(report))

    def violated(self, report: RunReport) -> bool:
        return self.is_violation and self.score(report) > 0.0


def _safety_breach(report: RunReport) -> float:
    # Disagreement outranks a validity breach so the minimizer prefers to
    # preserve the stronger counterexample while shrinking.
    if not report.agreement:
        return 2.0
    if report.validity is False:
        return 1.0
    return 0.0


OBJECTIVES: Dict[str, Objective] = {
    objective.name: objective
    for objective in (
        Objective(
            "agreement_violation",
            "a safety breach: correct processors disagree (score 2) or "
            "validity fails (score 1)",
            _safety_breach, is_violation=True),
        Objective(
            "max_rounds",
            "the execution using the most communication rounds",
            lambda report: report.rounds),
        Objective(
            "max_messages",
            "the execution sending the most messages in total",
            lambda report: report.metrics.get("total_messages", 0)),
        Objective(
            "max_units",
            "the execution with the largest per-processor computation",
            lambda report: report.metrics.get("max_computation_units", 0)),
    )
}


def objective_names() -> Tuple[str, ...]:
    return tuple(sorted(OBJECTIVES))


def get_objective(name: str) -> Objective:
    try:
        return OBJECTIVES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown search objective {name!r}; expected one of "
            f"{sorted(OBJECTIVES)}") from None
