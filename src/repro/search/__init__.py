"""Adversary search: hunt protocol/adversary grids for extremal executions.

The paper's theorems say what *cannot* happen when ``n ≥ 3t + 1``; this
package is the executable converse.  It sweeps randomized and mutated
:class:`~repro.api.request.RunRequest` candidates across a declared search
space, scores each finished run against an objective — a safety violation
(``agreement_violation``) or a cost extremum (``max_rounds``,
``max_messages``, ``max_units``) — and, when it finds a violation, shrinks
it to a minimal reproducer and can pin that reproducer as a JSON regression
fixture replayed by the test suite.

Everything is deterministic under a fixed ``sweep_seed``: candidate
sampling, per-candidate seeds (:func:`~repro.api.request.derive_seed`), and
the greedy minimizer all derive from it, so a reported counterexample is a
coordinate, not an anecdote.
"""

from .minimize import minimize_counterexample
from .objectives import OBJECTIVES, Objective, get_objective, objective_names
from .pinning import (PIN_KIND, PIN_VERSION, load_pinned, pin_scenario,
                      pinned_paths, replay_pinned)
from .harness import Evaluation, SearchResult, run_search
from .space import STRATEGIES, SearchSpec

__all__ = [
    "Evaluation",
    "OBJECTIVES",
    "Objective",
    "PIN_KIND",
    "PIN_VERSION",
    "STRATEGIES",
    "SearchResult",
    "SearchSpec",
    "get_objective",
    "load_pinned",
    "minimize_counterexample",
    "objective_names",
    "pin_scenario",
    "pinned_paths",
    "replay_pinned",
    "run_search",
]
