"""The search space: a serializable grid plus candidate sampling and mutation.

A :class:`SearchSpec` declares *where* to hunt — protocols, ``(n, t)``
cells, adversaries, value domain, budget — and the two strategies turn it
into concrete :class:`~repro.api.request.RunRequest` candidates:

``random``
    A seeded random sweep: every candidate is drawn independently from the
    grid by one :class:`random.Random` stream.
``anneal``
    Greedy mutation with an annealing escape hatch: each generation mutates
    the best candidate so far (one coordinate at a time — faulty set,
    adversary, a parameter, the initial value) and mixes in fresh random
    candidates; a worse generation champion still replaces the incumbent
    with a probability that cools as the budget drains, so the search can
    leave a local plateau early and settles late.

Per-candidate seeds are never sampled: candidate *i* of a search always
runs with :func:`~repro.api.request.derive_seed(sweep_seed, i)
<repro.api.request.derive_seed>`, the same positional rule as a
``seed_policy="derive"`` sweep, so re-running a spec reproduces every
execution bit for bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..api.registries import adversary_registry, protocol_registry
from ..api.request import RunRequest
from ..core.values import Value, default_domain
from ..runtime.errors import ConfigurationError

STRATEGIES = ("random", "anneal")

#: Sampling ladder for percentage-shaped adversary parameters.
_PERCENT_CHOICES = (10, 25, 50, 75, 90, 100)


@dataclass(frozen=True)
class SearchSpec:
    """A serializable description of one adversary search."""

    objective: str = "agreement_violation"
    protocols: Tuple[str, ...] = ("exponential",)
    #: The ``(n, t)`` instance sizes to hunt over.
    cells: Tuple[Tuple[int, int], ...] = ((7, 2),)
    #: Adversary names to draw from; empty means every registered adversary.
    adversaries: Tuple[str, ...] = ()
    strategy: str = "random"
    #: Total number of executions the search may spend.
    budget: int = 200
    sweep_seed: int = 0
    #: Permit under-resilient cells (``n < 3t + 1``) — the interesting ones.
    allow_unsafe: bool = False
    domain: Tuple[Value, ...] = field(default_factory=default_domain)
    #: Source inputs to try; empty means every value of the domain.
    initial_values: Tuple[Value, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "protocols", tuple(self.protocols))
        object.__setattr__(self, "cells",
                           tuple((int(n), int(t)) for n, t in self.cells))
        object.__setattr__(self, "adversaries", tuple(self.adversaries))
        object.__setattr__(self, "domain", tuple(self.domain))
        object.__setattr__(self, "initial_values",
                           tuple(self.initial_values))
        if self.strategy not in STRATEGIES:
            raise ConfigurationError(
                f"unknown search strategy {self.strategy!r}; expected one "
                f"of {STRATEGIES}")
        if self.budget < 1:
            raise ConfigurationError("a search needs a budget of at least 1")
        if not self.protocols or not self.cells:
            raise ConfigurationError(
                "a search needs at least one protocol and one (n, t) cell")
        unknown = set(self.protocols) - set(protocol_registry())
        if unknown:
            raise ConfigurationError(
                f"unknown protocol(s) {sorted(unknown)} in search spec")
        unknown = set(self.adversaries) - set(adversary_registry())
        if unknown:
            raise ConfigurationError(
                f"unknown adversar(ies) {sorted(unknown)} in search spec")

    def adversary_pool(self) -> Tuple[str, ...]:
        if self.adversaries:
            return self.adversaries
        return tuple(sorted(adversary_registry()))

    def value_pool(self) -> Tuple[Value, ...]:
        return self.initial_values or self.domain

    # -- serialization (provenance in pinned fixtures and --json output) ----
    def to_dict(self) -> Dict[str, Any]:
        return {
            "objective": self.objective,
            "protocols": list(self.protocols),
            "cells": [list(cell) for cell in self.cells],
            "adversaries": list(self.adversaries),
            "strategy": self.strategy,
            "budget": self.budget,
            "sweep_seed": self.sweep_seed,
            "allow_unsafe": self.allow_unsafe,
            "domain": list(self.domain),
            "initial_values": list(self.initial_values),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchSpec":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown SearchSpec field(s) {sorted(unknown)}; "
                f"accepted: {sorted(known)}")
        kwargs = dict(data)
        if "cells" in kwargs:
            kwargs["cells"] = tuple(tuple(cell) for cell in kwargs["cells"])
        return cls(**kwargs)


# ---------------------------------------------------------------------------
# Candidate sampling
# ---------------------------------------------------------------------------

def _sample_params(rng: random.Random, entry, t: int) -> Dict[str, Any]:
    """Draw plausible values for an adversary's declared int parameters."""
    params: Dict[str, Any] = {}
    for param in entry.params:
        if param.kind is not int:
            continue  # only int knobs exist today; leave others at default
        if param.choices is not None:
            params[param.name] = rng.choice(tuple(param.choices))
            continue
        if param.name.endswith("_percent"):
            params[param.name] = rng.choice(_PERCENT_CHOICES)
        else:
            # Rounds, victim counts, window widths: small values relative
            # to the instance (every protocol here runs O(t) rounds).
            params[param.name] = rng.randint(1, max(2, t + 1))
    return params


def _sample_faulty(rng: random.Random, n: int, t: int) -> Tuple[int, ...]:
    size = rng.randint(1, max(1, t))
    return tuple(sorted(rng.sample(range(n), size)))


def sample_candidate(spec: SearchSpec, rng: random.Random) -> RunRequest:
    """Draw one random candidate from the spec's grid (seed left at 0)."""
    protocol = rng.choice(spec.protocols)
    n, t = rng.choice(spec.cells)
    adversary = rng.choice(spec.adversary_pool())
    entry = adversary_registry()[adversary]
    return RunRequest(
        protocol=protocol, n=n, t=t,
        faulty=_sample_faulty(rng, n, t),
        adversary=adversary,
        adversary_params=_sample_params(rng, entry, t),
        initial_value=rng.choice(spec.value_pool()),
        domain=spec.domain,
        allow_unsafe=spec.allow_unsafe,
    )


def viable(request: RunRequest) -> bool:
    """Whether the candidate builds and validates (cheap, runs no rounds)."""
    try:
        spec_obj, config, _, _ = request.resolve_parts()
        spec_obj.validate(config)
    # repro-lint: waive[errors/broad-except] -- viability probe over
    # randomly sampled candidates: any resolve/validate failure means
    # "not viable", and sample_viable bounds the retry budget
    except Exception:
        return False
    return True


def sample_viable(spec: SearchSpec, rng: random.Random,
                  attempts: int = 64) -> Optional[RunRequest]:
    """A random candidate that passes validation; ``None`` if the grid is dry."""
    for _ in range(attempts):
        candidate = sample_candidate(spec, rng)
        if viable(candidate):
            return candidate
    return None


# ---------------------------------------------------------------------------
# Mutation (the anneal strategy's neighborhood)
# ---------------------------------------------------------------------------

def mutate_candidate(spec: SearchSpec, base: RunRequest,
                     rng: random.Random) -> RunRequest:
    """One neighbor of *base*: a single coordinate changed."""
    moves: List[str] = ["faulty", "value"]
    if len(spec.adversary_pool()) > 1:
        moves.append("adversary")
    if base.adversary_params:
        moves.append("param")
    if len(spec.cells) > 1:
        moves.append("cell")
    move = rng.choice(moves)
    if move == "faulty":
        return replace(base, faulty=_sample_faulty(rng, base.n, base.t))
    if move == "value":
        return replace(base, initial_value=rng.choice(spec.value_pool()))
    if move == "adversary":
        adversary = rng.choice(spec.adversary_pool())
        entry = adversary_registry()[adversary]
        return replace(base, adversary=adversary,
                       adversary_params=_sample_params(rng, entry, base.t))
    if move == "param":
        params = dict(base.adversary_params)
        name = rng.choice(sorted(params))
        if name.endswith("_percent"):
            params[name] = rng.choice(_PERCENT_CHOICES)
        else:
            params[name] = max(1, int(params[name]) + rng.choice((-1, 1)))
        return replace(base, adversary_params=params)
    # move == "cell": re-sample the faulty set too — the old one may not fit.
    n, t = rng.choice(spec.cells)
    return replace(base, n=n, t=t, faulty=_sample_faulty(rng, n, t))


def mutate_viable(spec: SearchSpec, base: RunRequest, rng: random.Random,
                  attempts: int = 16) -> Optional[RunRequest]:
    """A viable neighbor of *base*, or ``None`` after bounded attempts."""
    for _ in range(attempts):
        candidate = mutate_candidate(spec, base, rng)
        if candidate != base and viable(candidate):
            return candidate
    return None
