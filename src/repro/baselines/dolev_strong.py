"""The authenticated Dolev–Strong protocol, with simulated signatures.

The paper works in the *unauthenticated* model, but cites Dolev and Strong's
authenticated algorithms (SIAM J. Comput. 1983) as the natural comparison
point for what signatures buy: resilience ``t < n`` and single-value messages
in ``t + 1`` rounds.  We include it as a baseline so the benchmark tables can
show the unauthenticated algorithms' costs next to the authenticated optimum.

The model has no cryptography, so signatures are *simulated* with a
:class:`SignatureLedger`: a correct processor "signs" a (value, chain) pair by
registering it with the ledger, and verification checks that every correct
signer named in a chain actually registered the corresponding prefix.  Faulty
signers are never checked — the adversary may sign anything on their behalf —
which is exactly the guarantee an unforgeable signature scheme provides.  The
ledger is shared by the processors of one execution through the spec object,
so build a fresh :class:`DolevStrongSpec` per run (as the harness does).

Protocol (value ``v``, chain ``σ`` = sequence of distinct signer ids starting
with the source):

* round 1: the source signs and broadcasts its value;
* round ``r``: a processor that extracted a value with a valid chain of ``r-1``
  signers (not including itself) in the previous round appends its signature
  and relays; every processor adds to its extracted set each value carried by
  a valid chain of ``r`` distinct signers;
* after round ``t + 1``: decide the extracted value if exactly one exists,
  otherwise the default value.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..core.protocol import AgreementProtocol, ProtocolConfig, ProtocolSpec
from ..core.sequences import LabelSequence, ProcessorId
from ..core.values import DEFAULT_VALUE, Value
from ..runtime.errors import ConfigurationError
from ..runtime.messages import Inbox, Outbox, broadcast

Chain = LabelSequence


class SignatureLedger:
    """Registry of the (chain, value) pairs each *correct* processor signed.

    The ledger is the stand-in for an unforgeable signature scheme: a
    Byzantine processor cannot register on behalf of a correct one because
    only the correct protocol objects call :meth:`sign`.
    """

    def __init__(self) -> None:
        self._signed: Set[Tuple[ProcessorId, Chain, Value]] = set()

    def sign(self, signer: ProcessorId, chain: Chain, value: Value) -> None:
        """Record that *signer* signed *value* under the (signer-inclusive) *chain*."""
        self._signed.add((signer, tuple(chain), value))

    def verify(self, signer: ProcessorId, chain: Chain, value: Value,
               correct_hint: bool) -> bool:
        """Check one signature.  Signatures of (presumed) faulty signers always
        verify — the ledger only protects correct processors from forgery."""
        if not correct_hint:
            return True
        return (signer, tuple(chain), value) in self._signed


class DolevStrongProcessor(AgreementProtocol):
    """One processor's execution of authenticated Dolev–Strong broadcast."""

    def __init__(self, pid: ProcessorId, config: ProtocolConfig,
                 ledger: SignatureLedger) -> None:
        super().__init__(pid, config)
        self.ledger = ledger
        #: values this processor has extracted (accepted with a valid chain)
        self.extracted: Set[Value] = set()
        #: (chain, value) pairs to relay in the next round
        self._to_relay: List[Tuple[Chain, Value]] = []

    @property
    def total_rounds(self) -> int:
        return self.config.t + 1

    # -- signature helpers ---------------------------------------------------------
    def _chain_valid(self, chain: Chain, value: Value, round_number: int) -> bool:
        """A chain is valid in round r if it has r distinct signers starting with
        the source, does not include this processor, and every signer's
        signature verifies (correct signers must have registered)."""
        chain = tuple(chain)
        if len(chain) != round_number:
            return False
        if not chain or chain[0] != self.config.source:
            return False
        if len(set(chain)) != len(chain) or self.pid in chain:
            return False
        if any(not (0 <= signer < self.config.n) for signer in chain):
            return False
        if value not in self.config.domain:
            return False
        for index, signer in enumerate(chain):
            prefix = chain[:index + 1]
            # The receiver does not know who is faulty; the ledger applies the
            # forgery check only to processors that actually registered keys
            # (i.e. ran the correct protocol), which is the honest-signer set.
            if not self.ledger.verify(signer, prefix, value,
                                      correct_hint=self._has_key(signer)):
                return False
        return True

    def _has_key(self, signer: ProcessorId) -> bool:
        """Whether *signer* ever registered any signature (correct processors do)."""
        return any(s == signer for s, _chain, _value in self.ledger._signed)

    # -- protocol API ------------------------------------------------------------------
    def outgoing(self, round_number: int) -> Outbox:
        self._check_round(round_number)
        if round_number == 1:
            if self.pid != self.config.source:
                return {}
            chain = (self.config.source,)
            value = self.config.initial_value
            self.ledger.sign(self.pid, chain, value)
            return broadcast({chain: value}, self.pid, round_number,
                             self.config.processors)
        if self.pid == self.config.source or not self._to_relay:
            return {}
        entries: Dict[Chain, Value] = {}
        for chain, value in self._to_relay:
            extended = tuple(chain) + (self.pid,)
            self.ledger.sign(self.pid, extended, value)
            entries[extended] = value
        self._to_relay = []
        return broadcast(entries, self.pid, round_number, self.config.processors)

    def incoming(self, round_number: int, inbox: Inbox) -> None:
        if self.pid == self.config.source:
            if round_number == 1:
                self.extracted.add(self.config.initial_value)
                self._decide(self.config.initial_value)
            return
        for sender, message in inbox.items():
            for chain, value in message.items():
                chain = tuple(chain)
                if not chain or chain[-1] != sender:
                    continue
                if not self._chain_valid(chain, value, round_number):
                    continue
                if value not in self.extracted:
                    self.extracted.add(value)
                    if round_number < self.total_rounds:
                        self._to_relay.append((chain, value))
        if round_number == self.total_rounds:
            if len(self.extracted) == 1:
                self._decide(next(iter(self.extracted)))
            else:
                self._decide(DEFAULT_VALUE)

    def preferred_value(self) -> Value:
        if len(self.extracted) == 1:
            return next(iter(self.extracted))
        return DEFAULT_VALUE


class DolevStrongSpec(ProtocolSpec):
    """Protocol spec for the authenticated Dolev–Strong baseline.

    Each spec instance owns one :class:`SignatureLedger`; create a fresh spec
    per execution (``run_agreement`` never reuses protocol state, but the
    ledger lives on the spec precisely so that the processors of one run share
    a signature scheme).
    """

    name = "dolev-strong"

    def __init__(self) -> None:
        self.ledger = SignatureLedger()

    def validate(self, config: ProtocolConfig) -> None:
        if config.t >= config.n - 1:
            raise ConfigurationError(
                f"Dolev–Strong requires at least two correct processors "
                f"(got n={config.n}, t={config.t})")

    def total_rounds(self, config: ProtocolConfig) -> int:
        return config.t + 1

    def build(self, pid: ProcessorId, config: ProtocolConfig) -> AgreementProtocol:
        self.validate(config)
        return DolevStrongProcessor(pid, config, self.ledger)

    def describe(self) -> str:
        return "dolev-strong: authenticated, t+1 rounds, resilience t < n − 1"
