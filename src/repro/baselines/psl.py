"""The original Pease–Shostak–Lamport algorithm (the comparison baseline).

The paper presents its Exponential Algorithm as "a simplification of the
original exponential-time Byzantine agreement algorithm due to Pease,
Shostak, and Lamport (1980) ... of comparable complexity to their algorithm".
In the synchronous full-information setting the PSL algorithm (`OM(t)` in its
oral-messages formulation) gathers exactly the same information as
Exponential Information Gathering and decides by the same recursive majority;
the differences are presentational — and the PSL algorithm has neither the
Fault Discovery nor the Fault Masking Rule, because it never shifts.

This baseline therefore runs the EIG machinery with fault discovery and
masking *disabled*, which is the honest executable rendering of PSL in this
substrate: identical message pattern and costs (``t + 1`` rounds, ``O(n^t)``
bits), identical decisions in every failure-free execution, but none of the
auxiliary structure the shifting technique needs.  Tests compare it head to
head against the (modified) Exponential Algorithm to check both that the
simplification preserves behaviour and that discovery/masking is what the
shifting families add.
"""

from __future__ import annotations

from ..core.exponential import (exponential_max_message_entries,
                                exponential_resilience, exponential_rounds,
                                exponential_schedule)
from ..core.protocol import AgreementProtocol, ProtocolConfig, ProtocolSpec
from ..core.sequences import ProcessorId
from ..core.shifting import ShiftingEIGProcessor
from ..runtime.errors import ConfigurationError


class PeaseShostakLamportSpec(ProtocolSpec):
    """The original exponential algorithm (no fault discovery, no masking)."""

    name = "psl-om"

    def validate(self, config: ProtocolConfig) -> None:
        if config.n < 3 * config.t + 1:
            raise ConfigurationError(
                f"the Pease–Shostak–Lamport algorithm requires n ≥ 3t + 1 "
                f"(got n={config.n}, t={config.t})")

    def total_rounds(self, config: ProtocolConfig) -> int:
        return exponential_rounds(config.t)

    def build(self, pid: ProcessorId, config: ProtocolConfig) -> AgreementProtocol:
        self.validate(config)
        return ShiftingEIGProcessor(pid, config,
                                    exponential_schedule(config.t),
                                    enable_fault_discovery=False)

    def describe(self) -> str:
        return "psl-om: original EIG + recursive majority, t+1 rounds, O(n^t) bits"


def psl_resilience(n: int) -> int:
    """``⌊(n − 1)/3⌋`` — the optimal resilience, shared with the Exponential Algorithm."""
    return exponential_resilience(n)


def psl_rounds(t: int) -> int:
    return exponential_rounds(t)


def psl_max_message_entries(n: int, t: int) -> int:
    return exponential_max_message_entries(n, t)
