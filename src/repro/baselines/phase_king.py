"""The Phase King algorithm (Berman–Garay–Perry), adapted to broadcast.

The paper's "Recent Results" section points to Berman, Garay and Perry's
constant-message-size agreement protocols as successors that reuse its fault
masking ideas.  The classic Phase King protocol is the simplest member of
that family: ``t + 1`` phases of two rounds each, messages of ``O(1)`` values,
resilience ``n > 4t``.  We include it as an independent baseline — a protocol
*not* derived from information gathering trees — so the benchmark harness can
compare round counts and message bits across genuinely different designs.

Adaptation to the broadcast (Byzantine Generals) problem: a round-0 broadcast
by the source seeds every processor's preference, after which the standard
consensus phases run.  Validity follows because with a correct source every
correct processor starts the phases with the same preference and the
``> n/2 + t`` retention threshold keeps it; agreement follows from the phase
whose king is correct.

Phase structure (phase ``k``, king ``= k-th`` processor in id order):

* round ``2k``: every processor broadcasts its preference; each processor
  tallies the received preferences (its own included) and computes the
  majority value and its count;
* round ``2k + 1``: the king broadcasts its majority value; every processor
  keeps its own majority value if its count exceeded ``n/2 + t``, otherwise
  adopts the king's value (default 0 if the king stayed silent).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional

from ..core.protocol import AgreementProtocol, ProtocolConfig, ProtocolSpec
from ..core.sequences import ProcessorId
from ..core.values import DEFAULT_VALUE, Value, coerce_value
from ..runtime.errors import ConfigurationError
from ..runtime.messages import Inbox, Message, Outbox, broadcast


def phase_king_resilience(n: int) -> int:
    """Largest ``t`` with ``n > 4t``: ``⌊(n − 1)/4⌋``."""
    return (n - 1) // 4


def phase_king_rounds(t: int) -> int:
    """One seeding round plus two rounds for each of ``t + 1`` phases."""
    return 1 + 2 * (t + 1)


def phase_king_max_message_entries() -> int:
    """Every Phase King message carries a single value."""
    return 1


class PhaseKingProcessor(AgreementProtocol):
    """One processor's execution of the broadcast-adapted Phase King protocol."""

    def __init__(self, pid: ProcessorId, config: ProtocolConfig) -> None:
        super().__init__(pid, config)
        self.preference: Value = DEFAULT_VALUE
        self._tally_value: Value = DEFAULT_VALUE
        self._tally_count: int = 0
        #: phase index -> king processor id (kings rotate in id order)
        self.kings: Dict[int, ProcessorId] = {
            phase: sorted(config.processors)[phase % config.n]
            for phase in range(config.t + 1)
        }
        self._key = (config.source,)

    # -- round geometry ---------------------------------------------------------
    @property
    def total_rounds(self) -> int:
        return phase_king_rounds(self.config.t)

    def _phase_and_step(self, round_number: int):
        """Map a global round to ``(phase, step)`` where step 0 is the exchange
        round and step 1 the king round; round 1 maps to ``(None, None)``."""
        if round_number == 1:
            return None, None
        offset = round_number - 2
        return offset // 2, offset % 2

    # -- protocol API ---------------------------------------------------------------
    def outgoing(self, round_number: int) -> Outbox:
        self._check_round(round_number)
        if round_number == 1:
            if self.pid != self.config.source:
                return {}
            return broadcast({self._key: self.config.initial_value}, self.pid,
                             round_number, self.config.processors)
        phase, step = self._phase_and_step(round_number)
        if step == 0:
            return broadcast({self._key: self.preference}, self.pid,
                             round_number, self.config.processors)
        if self.kings[phase] != self.pid:
            return {}
        return broadcast({self._key: self._tally_value}, self.pid,
                         round_number, self.config.processors)

    def incoming(self, round_number: int, inbox: Inbox) -> None:
        if round_number == 1:
            if self.pid == self.config.source:
                self.preference = self.config.initial_value
                self._decide(self.config.initial_value)
            else:
                self.preference = self._claimed(inbox.get(self.config.source))
            return
        if self.pid == self.config.source:
            return
        phase, step = self._phase_and_step(round_number)
        if step == 0:
            self._universal_exchange(inbox)
        else:
            self._king_round(phase, inbox)
            if round_number == self.total_rounds:
                self._decide(self.preference)

    # -- phase bodies ----------------------------------------------------------------------
    def _claimed(self, message: Optional[Message]) -> Value:
        if message is None:
            return DEFAULT_VALUE
        return coerce_value(message.value_for(self._key), self.config.domain)

    def _universal_exchange(self, inbox: Inbox) -> None:
        counter: Counter = Counter()
        counter[self.preference] += 1
        for sender in self.config.processors:
            if sender == self.pid:
                continue
            counter[self._claimed(inbox.get(sender))] += 1
        value, count = counter.most_common(1)[0]
        self._tally_value = value
        self._tally_count = count

    def _king_round(self, phase: int, inbox: Inbox) -> None:
        king = self.kings[phase]
        threshold = self.config.n / 2 + self.config.t
        if self._tally_count > threshold:
            self.preference = self._tally_value
        elif king == self.pid:
            self.preference = self._tally_value
        else:
            self.preference = self._claimed(inbox.get(king))

    # -- introspection -----------------------------------------------------------------------
    def preferred_value(self) -> Value:
        return self.preference


class PhaseKingSpec(ProtocolSpec):
    """Protocol spec for the broadcast-adapted Phase King baseline."""

    name = "phase-king"

    def validate(self, config: ProtocolConfig) -> None:
        if config.t > phase_king_resilience(config.n):
            raise ConfigurationError(
                f"Phase King requires n > 4t (got n={config.n}, t={config.t})")

    def total_rounds(self, config: ProtocolConfig) -> int:
        return phase_king_rounds(config.t)

    def build(self, pid: ProcessorId, config: ProtocolConfig) -> AgreementProtocol:
        self.validate(config)
        return PhaseKingProcessor(pid, config)

    def describe(self) -> str:
        return "phase-king: 2(t+1)+1 rounds, O(1)-value messages, n > 4t"
