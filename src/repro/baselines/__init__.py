"""Baseline agreement protocols the paper compares against or builds upon."""

from __future__ import annotations

from .dolev_strong import DolevStrongProcessor, DolevStrongSpec, SignatureLedger
from .phase_king import (PhaseKingProcessor, PhaseKingSpec, phase_king_max_message_entries,
                         phase_king_resilience, phase_king_rounds)
from .psl import (PeaseShostakLamportSpec, psl_max_message_entries, psl_resilience,
                  psl_rounds)

__all__ = [
    "PeaseShostakLamportSpec", "psl_resilience", "psl_rounds", "psl_max_message_entries",
    "PhaseKingSpec", "PhaseKingProcessor", "phase_king_resilience",
    "phase_king_rounds", "phase_king_max_message_entries",
    "DolevStrongSpec", "DolevStrongProcessor", "SignatureLedger",
]
