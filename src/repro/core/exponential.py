"""The Exponential Algorithm (Section 3 of the paper).

"Exponential Information Gathering with Recursive Majority Voting": gather
information for ``t + 1`` rounds, convert the tree with ``resolve`` (recursive
majority), decide on the converted value for the root.  It requires
``n ≥ 3t + 1`` and reaches agreement in the optimal ``t + 1`` rounds, at the
cost of messages (and local computation) that grow as ``O(n^h)`` with the
round number ``h``.

The processors here run the *modified* Exponential Algorithm — with the Fault
Discovery and Fault Masking Rules — which is the version every other algorithm
in the paper is derived from by shifting.  A flag allows the conversion
function to be swapped for ``resolve'`` (the paper's Remark 1 after Claim 2:
the Exponential Algorithm is also correct with ``resolve'``).
"""

from __future__ import annotations

from .protocol import AgreementProtocol, ProtocolConfig, ProtocolSpec
from .sequences import ProcessorId
from .shifting import Segment, ShiftSchedule, ShiftingEIGProcessor
from ..runtime.errors import ConfigurationError


def exponential_resilience(n: int) -> int:
    """Maximum resilience of the Exponential Algorithm: ``⌊(n − 1) / 3⌋``."""
    return (n - 1) // 3


def exponential_rounds(t: int) -> int:
    """Rounds of communication used by the Exponential Algorithm: ``t + 1``."""
    return t + 1


def exponential_max_message_entries(n: int, t: int) -> int:
    """Entries of the largest message: the leaf count of the round-``t`` tree.

    Round ``t + 1`` messages carry the ``t``-level leaves, of which there are
    ``(n − 1)(n − 2)···(n − t + 1)`` — the paper's ``O(n^{t-1})`` bound (with
    an extra ``n − t`` factor for the final, unsent level when counting tree
    size instead of message size).
    """
    count = 1
    for i in range(1, t):
        count *= max(1, n - i)
    return count


def exponential_schedule(t: int, conversion: str = "resolve") -> ShiftSchedule:
    """The Exponential Algorithm as a degenerate one-segment shift schedule."""
    return ShiftSchedule((Segment(t, conversion, conversion_discovery=False),))


class ExponentialSpec(ProtocolSpec):
    """Protocol spec for the (modified) Exponential Algorithm.

    Parameters
    ----------
    conversion:
        ``"resolve"`` (default, recursive majority) or ``"resolve_prime"``
        (the threshold conversion; also correct, per the paper's remark).
    """

    def __init__(self, conversion: str = "resolve") -> None:
        self.conversion = conversion
        self.name = ("exponential" if conversion == "resolve"
                     else "exponential-resolve-prime")

    def validate(self, config: ProtocolConfig) -> None:
        if config.n < 3 * config.t + 1 and not config.allow_unsafe:
            raise ConfigurationError(
                f"the Exponential Algorithm requires n ≥ 3t + 1 "
                f"(got n={config.n}, t={config.t}); set allow_unsafe to "
                f"run the under-resilient instance anyway")

    def total_rounds(self, config: ProtocolConfig) -> int:
        return exponential_rounds(config.t)

    def build(self, pid: ProcessorId, config: ProtocolConfig) -> AgreementProtocol:
        self.validate(config)
        return ShiftingEIGProcessor(
            pid, config, exponential_schedule(config.t, self.conversion))

    def describe(self) -> str:
        return f"{self.name}(t+1 rounds, O(n^t) bits)"
