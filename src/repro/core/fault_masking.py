"""The Fault Masking Rule (Section 3 of the paper).

    "If q is added to L in round k, then any messages from q in round k and
     any subsequent round are replaced by messages in which each value is the
     default 0."

The rule interacts with fault discovery in a specific order, which this module
implements exactly:

1. When the round-``k`` messages arrive, messages from processors *already* in
   ``L_p`` are masked (every entry replaced by the default value).
2. The Fault Discovery Rule is evaluated on the resulting round-``k`` tree.
3. Newly discovered processors are added to ``L_p`` and *their* round-``k``
   contributions are masked as well (only the freshly stored level — the
   portion of the tree not yet relayed to others — is rewritten; earlier
   levels are left untouched).

Because masking a newly discovered sender changes the child values of other
nodes, steps 2–3 are iterated to a fixpoint.
"""

from __future__ import annotations

from typing import Dict, Set

from .fault_discovery import FaultTracker, discover_at_level
from .sequences import ProcessorId
from .tree import InfoGatheringTree
from .values import DEFAULT_VALUE, Value
from ..runtime.messages import Inbox, Message


def mask_inbox(inbox: Inbox, suspects: Set[ProcessorId],
               masked_value: Value = DEFAULT_VALUE) -> Inbox:
    """Replace every entry of every message from a suspect sender by the default.

    This is step 1 of the rule: it acts on messages, before they are stored in
    the tree, and leaves messages from unsuspected senders untouched.
    """
    masked: Inbox = {}
    for sender, message in inbox.items():
        if sender in suspects:
            masked[sender] = message.replace_values(masked_value)
        else:
            masked[sender] = message
    return masked


def mask_level_entries(tree: InfoGatheringTree, level: int,
                       senders: Set[ProcessorId],
                       masked_value: Value = DEFAULT_VALUE) -> int:
    """Overwrite with the default every node of *level* whose last label is a
    masked sender.  Returns the number of rewritten nodes.

    The values at ``α·q`` of the freshly stored level came from ``q``'s
    round-``k`` message, so masking ``q``'s round-``k`` message after the fact
    means rewriting exactly those nodes.
    """
    if not senders:
        return 0
    rewritten = 0
    for seq in tree.level_sequences(level):
        if seq[-1] in senders:
            tree.store(seq, masked_value)
            rewritten += 1
    return rewritten


def discover_and_mask(tree: InfoGatheringTree, level: int,
                      tracker: FaultTracker, round_number: int,
                      masked_value: Value = DEFAULT_VALUE) -> Set[ProcessorId]:
    """Steps 2–3 of the rule, iterated to a fixpoint.

    Returns the set of processors newly added to ``L_p`` during this round.
    """
    newly_discovered: Set[ProcessorId] = set()
    while True:
        fresh = discover_at_level(tree, level, tracker.suspects, tracker.t,
                                  meter=tree.meter)
        fresh = {pid for pid in fresh if pid not in tracker}
        if not fresh:
            break
        tracker.add_all(fresh, round_number)
        newly_discovered |= fresh
        mask_level_entries(tree, level, fresh, masked_value)
    return newly_discovered


def masked_claim(message: Message, seq, sender: ProcessorId,
                 suspects: Set[ProcessorId], domain,
                 masked_value: Value = DEFAULT_VALUE) -> Value:
    """Resolve the value claimed by *sender* for node *seq*, applying masking
    and the default-value substitution for inappropriate messages.

    Helper shared by the protocol implementations when they populate a new
    tree level from an inbox.
    """
    from .values import coerce_value  # local import to avoid cycle at module load

    if sender in suspects or message is None:
        return masked_value
    claimed = message.value_for(seq)
    return coerce_value(claimed, domain)
