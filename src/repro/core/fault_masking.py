"""The Fault Masking Rule (Section 3 of the paper).

    "If q is added to L in round k, then any messages from q in round k and
     any subsequent round are replaced by messages in which each value is the
     default 0."

The rule interacts with fault discovery in a specific order, which this module
implements exactly:

1. When the round-``k`` messages arrive, messages from processors *already* in
   ``L_p`` are masked (every entry replaced by the default value).
2. The Fault Discovery Rule is evaluated on the resulting round-``k`` tree.
3. Newly discovered processors are added to ``L_p`` and *their* round-``k``
   contributions are masked as well (only the freshly stored level — the
   portion of the tree not yet relayed to others — is rewritten; earlier
   levels are left untouched).

Because masking a newly discovered sender changes the child values of other
nodes, steps 2–3 are iterated to a fixpoint.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set

from .fault_discovery import (FaultTracker, discover_at_level,
                              discover_at_level_flat,
                              discover_at_level_numpy)
from .sequences import ProcessorId
from .tree import MISSING, FlatEIGTree, InfoGatheringTree, NumpyEIGTree
from .values import DEFAULT_VALUE, Value
from ..runtime.messages import (Inbox, LevelMessage, Message,
                                NumpyLevelMessage)


def mask_inbox(inbox: Inbox, suspects: Set[ProcessorId],
               masked_value: Value = DEFAULT_VALUE) -> Inbox:
    """Replace every entry of every message from a suspect sender by the default.

    This is step 1 of the rule: it acts on messages, before they are stored in
    the tree, and leaves messages from unsuspected senders untouched.
    """
    masked: Inbox = {}
    for sender, message in inbox.items():
        if sender in suspects:
            masked[sender] = message.replace_values(masked_value)
        else:
            masked[sender] = message
    return masked


def mask_level_entries(tree: InfoGatheringTree, level: int,
                       senders: Set[ProcessorId],
                       masked_value: Value = DEFAULT_VALUE) -> int:
    """Overwrite with the default every node of *level* whose last label is a
    masked sender.  Returns the number of rewritten nodes.

    The values at ``α·q`` of the freshly stored level came from ``q``'s
    round-``k`` message, so masking ``q``'s round-``k`` message after the fact
    means rewriting exactly those nodes.
    """
    if not senders:
        return 0
    rewritten = 0
    for seq in tree.level_sequences(level):
        if seq[-1] in senders:
            tree.store(seq, masked_value)
            rewritten += 1
    return rewritten


def discover_and_mask(tree: InfoGatheringTree, level: int,
                      tracker: FaultTracker, round_number: int,
                      masked_value: Value = DEFAULT_VALUE) -> Set[ProcessorId]:
    """Steps 2–3 of the rule, iterated to a fixpoint.

    Returns the set of processors newly added to ``L_p`` during this round.
    Flat-engine trees take a buffer-level path with identical semantics and
    meter accounting (discovery scans the level slice in place; masking
    rewrites exactly the slots of the freshly discovered senders).
    """
    if isinstance(tree, NumpyEIGTree):
        return _discover_and_mask_numpy(tree, level, tracker, round_number,
                                        masked_value)
    if isinstance(tree, FlatEIGTree):
        return _discover_and_mask_flat(tree, level, tracker, round_number,
                                       masked_value)
    newly_discovered: Set[ProcessorId] = set()
    while True:
        fresh = discover_at_level(tree, level, tracker.suspects, tracker.t,
                                  meter=tree.meter)
        fresh = {pid for pid in fresh if pid not in tracker}
        if not fresh:
            break
        tracker.add_all(fresh, round_number)
        newly_discovered |= fresh
        mask_level_entries(tree, level, fresh, masked_value)
    return newly_discovered


def _discover_and_mask_flat(tree: FlatEIGTree, level: int,
                            tracker: FaultTracker, round_number: int,
                            masked_value: Value = DEFAULT_VALUE
                            ) -> Set[ProcessorId]:
    """Fixpoint of flat discovery and in-place slot masking (fast engine)."""
    newly_discovered: Set[ProcessorId] = set()
    if level < 2 or level > tree.num_levels:
        return newly_discovered
    buffer = tree.raw_level(level)
    slots_table = tree.index.slots_for(level)
    while True:
        fresh = discover_at_level_flat(tree, level, tracker.suspects,
                                       tracker.t, meter=tree.meter)
        fresh = {pid for pid in fresh if pid not in tracker}
        if not fresh:
            break
        tracker.add_all(fresh, round_number)
        newly_discovered |= fresh
        rewritten = 0
        for pid in fresh:
            entry = slots_table.get(pid)
            if entry is None:
                continue
            for slot in entry[0]:
                if buffer[slot] is not MISSING:
                    buffer[slot] = masked_value
                    rewritten += 1
        tree.meter.charge(rewritten)
    return newly_discovered


def _discover_and_mask_numpy(tree: NumpyEIGTree, level: int,
                             tracker: FaultTracker, round_number: int,
                             masked_value: Value = DEFAULT_VALUE
                             ) -> Set[ProcessorId]:
    """Fixpoint of vectorized discovery and fancy-indexed slot masking."""
    from .npsupport import MISSING_CODE, VALUE_CODEC
    newly_discovered: Set[ProcessorId] = set()
    if level < 2 or level > tree.num_levels:
        return newly_discovered
    buffer = tree.raw_level(level)
    slots_table = tree.index.slots_np(level)
    masked_code = VALUE_CODEC.code(masked_value)
    while True:
        fresh = discover_at_level_numpy(tree, level, tracker.suspects,
                                        tracker.t, meter=tree.meter)
        fresh = {pid for pid in fresh if pid not in tracker}
        if not fresh:
            break
        tracker.add_all(fresh, round_number)
        newly_discovered |= fresh
        rewritten = 0
        for pid in fresh:
            entry = slots_table.get(pid)
            if entry is None:
                continue
            slots = entry[0]
            stored = slots[buffer[slots] != MISSING_CODE]
            buffer[stored] = masked_code
            rewritten += int(stored.size)
        tree.meter.charge(rewritten)
    return newly_discovered


def gather_level_batched(state, level: int, claims, row_of, domain_mask
                         ) -> None:
    """One 2-D fancy-indexed gather stepping every participant at once.

    Whole-run twin of :func:`gather_level_numpy`: *claims* is a
    ``(rows, prev_level_size)`` code matrix whose rows are the distinct claim
    vectors of the round (the previous level stack — correct broadcasts and
    echoes are by construction the sender's own row — plus an all-default row
    for missing/suspect senders and one row per distinct faulty message), and
    ``row_of[i, c]`` names the claims row receiver *i* reads for sender label
    ``c``.  The new level of the entire run is then a single gather
    ``claims[row_of[:, last_labels], parent_of_slot]`` pushed through the
    code-level domain mask.

    The uniform domain mask is equivalent to the per-processor paths: echoed
    own values are always in-domain (they passed coercion, masking, or a
    conversion), ``MISSING_CODE`` is never in-domain, and every other
    out-of-domain claim collapses to the default exactly as the Fault
    Masking / default-substitution rules require.
    """
    from .npsupport import DEFAULT_CODE, require_numpy
    np = require_numpy()
    index = state.index
    values = claims[row_of[:, index.last_labels_np(level)],
                    index.parent_ids_np(level)]
    stack = np.where(domain_mask[values], values, DEFAULT_CODE)
    state.append_level(stack.astype(claims.dtype, copy=False))


def discover_and_mask_batched(state, level: int,
                              trackers: List[FaultTracker],
                              round_number: int, meters,
                              masked_value: Value = DEFAULT_VALUE
                              ) -> List[Set[ProcessorId]]:
    """Whole-run fixpoint of batched discovery and row-slice masking.

    2-D twin of :func:`_discover_and_mask_numpy`: per fixpoint iteration one
    ``bincount`` trigger kernel covers every still-active participant, then
    the per-label scan, tracker updates, slot masking, and meter charges run
    row by row exactly as the per-processor pass would.  A participant whose
    scan finds nothing fresh is deactivated — its row can no longer change
    (masking only rewrites the owner's row) — which reproduces the
    per-processor fixpoint's termination and charge accounting verbatim.
    Returns the per-participant sets of newly discovered processors.
    """
    from .fault_discovery import (_scan_fired_labels, batched_fired_ids,
                                  quiet_scan_charge)
    from .npsupport import VALUE_CODEC, require_numpy
    np = require_numpy()
    count = state.count
    newly: List[Set[ProcessorId]] = [set() for _ in range(count)]
    if level < 2 or level > state.num_levels:
        return newly
    index = state.index
    child_stack = state.raw_stack(level)
    branch = index.branch(level - 1)
    parents_size = index.level_size(level - 1)
    slots_table = index.slots_np(level)
    masked_code = VALUE_CODEC.code(masked_value)
    # Batched levels are stored whole (the BatchedEIGState invariant), so the
    # per-processor kernels' MISSING-substitution and parent-presence passes
    # are no-ops here and every parent is examined.
    active = list(range(count))
    while active:
        rows = child_stack[active] if len(active) < count else child_stack
        budgets = []
        suspect_sets = []
        for i in active:
            suspects = trackers[i].suspects
            suspect_sets.append(suspects)
            budgets.append(trackers[i].t - len(suspects))
        fired = batched_fired_ids(rows, parents_size, branch, index, level,
                                  suspect_sets, budgets, len(VALUE_CODEC))
        still_active = []
        for k, i in enumerate(active):
            tracker = trackers[i]
            if not fired[k]:
                # No window fired for this participant: the scan would charge
                # every non-suspect label in full and discover nothing.
                meters[i].charge(quiet_scan_charge(
                    index, level - 1, parents_size, suspect_sets[k],
                    2 * branch))
                continue
            discovered: Set[ProcessorId] = set()
            charge = _scan_fired_labels(
                index, level - 1, fired[k],
                suspect_sets[k], discovered, 2 * branch)
            meters[i].charge(charge)
            fresh = {pid for pid in discovered if pid not in tracker}
            if not fresh:
                continue
            tracker.add_all(fresh, round_number)
            newly[i] |= fresh
            row = child_stack[i]
            rewritten = 0
            for pid in fresh:
                entry = slots_table.get(pid)
                if entry is None:
                    continue
                slots = entry[0]
                row[slots] = masked_code
                rewritten += int(slots.size)
            meters[i].charge(rewritten)
            still_active.append(i)
        active = still_active
    return newly


def gather_level_numpy(tree: NumpyEIGTree, level: int, inbox: Inbox,
                       tracker: FaultTracker,
                       domain_set: FrozenSet[Value],
                       echo_labels: Iterable[ProcessorId],
                       masked_labels: Iterable[ProcessorId] = ()) -> None:
    """ndarray counterpart of :func:`gather_level_flat`.

    One fancy-indexed assignment per sender label over the interned
    ``(slots, parents)`` ndarrays replaces the per-sender zip-copies: an
    aligned :class:`~repro.runtime.messages.NumpyLevelMessage` contributes
    ``new[slots] = message_codes[parents]`` filtered through a code-level
    domain mask, echoes copy the processor's own previous level the same way,
    and everything else (suspects, masked labels, missing messages,
    out-of-domain entries) collapses into the preinitialised default — the
    identical Fault Masking / default-substitution semantics, with identical
    meter charges.
    """
    from .npsupport import MISSING_CODE, VALUE_CODEC, require_numpy
    np = require_numpy()
    index = tree.index
    previous = tree.raw_level(level - 1)
    new_level = np.full(index.level_size(level),
                        VALUE_CODEC.code(DEFAULT_VALUE),
                        dtype=previous.dtype)
    echo_labels = set(echo_labels)
    masked_labels = set(masked_labels)
    domain_mask = VALUE_CODEC.domain_mask(domain_set)
    previous_sequences = None
    for label, (slots, parents) in index.slots_np(level).items():
        if label in masked_labels:
            continue
        if label in echo_labels:
            values = previous[parents]
            keep = values != MISSING_CODE
            new_level[slots[keep]] = values[keep]
            tree.meter.charge(len(slots))
            continue
        if label in tracker:
            continue  # masked sender: every claim becomes the default
        message = inbox.get(label)
        if message is None:
            continue
        if isinstance(message, NumpyLevelMessage) and message.matches(
                index, level - 1):
            source_codes = message.level_codes()
            values = source_codes[parents]
            keep = domain_mask[values]
            new_level[slots[keep]] = values[keep]
            continue
        # Foreign layout (round-1 style, adversary-built, or cross-engine
        # message): fall back to per-entry lookup with domain coercion.
        if previous_sequences is None:
            previous_sequences = index.sequences(level - 1)
        code_of = VALUE_CODEC.code
        for slot, parent_id in zip(slots.tolist(), parents.tolist()):
            value = message.value_for(previous_sequences[parent_id])
            if value in domain_set:
                new_level[slot] = code_of(value)
    tree.append_level(new_level)


def gather_level_flat(tree: FlatEIGTree, level: int, inbox: Inbox,
                      tracker: FaultTracker,
                      domain_set: FrozenSet[Value],
                      echo_labels: Iterable[ProcessorId],
                      masked_labels: Iterable[ProcessorId] = ()) -> None:
    """Populate *level* of a flat tree directly from a round's inbox.

    The fast-engine counterpart of ``grow_level`` + a per-node claim
    callback, shared by the shifting EIG processor and Algorithm C: one pass
    per sender label over the interned ``(slots, parents)`` tables.  The
    value stored at slot ``(parent i, child c)`` is sender ``c``'s claim for
    parent ``i`` — when the sender shares the tree shape, that is its level
    buffer at index ``i``.

    ``echo_labels`` are filled from the processor's *own* previous level
    (its own name, and Algorithm C's silent-source substitution);
    ``masked_labels`` collapse to the default outright (the substitution
    once the source is in ``L_p``).  Suspect senders, missing messages, and
    out-of-domain or missing entries likewise become the preinitialised
    default — exactly the Fault Masking / default-substitution semantics of
    the reference path.
    """
    index = tree.index
    previous = tree.raw_level(level - 1)
    new_level: List[Value] = [DEFAULT_VALUE] * index.level_size(level)
    echo_labels = set(echo_labels)
    masked_labels = set(masked_labels)
    previous_sequences = None
    for label, (slots, parents) in index.slots_for(level).items():
        if label in masked_labels:
            continue
        if label in echo_labels:
            for slot, parent_id in zip(slots, parents):
                value = previous[parent_id]
                if value is not MISSING:
                    new_level[slot] = value
            tree.meter.charge(len(slots))
            continue
        if label in tracker:
            continue  # masked sender: every claim becomes the default
        message = inbox.get(label)
        if message is None:
            continue
        if isinstance(message, LevelMessage) and message.matches(index,
                                                                 level - 1):
            source_values = message.level_values()
            for slot, parent_id in zip(slots, parents):
                value = source_values[parent_id]
                if value in domain_set:
                    new_level[slot] = value
            continue
        # Foreign layout (round-1 style or adversary-built message): fall
        # back to per-entry lookup with domain coercion.
        if previous_sequences is None:
            previous_sequences = index.sequences(level - 1)
        for slot, parent_id in zip(slots, parents):
            value = message.value_for(previous_sequences[parent_id])
            if value in domain_set:
                new_level[slot] = value
    tree.append_level(new_level)


def masked_claim(message: Message, seq, sender: ProcessorId,
                 suspects: Set[ProcessorId], domain,
                 masked_value: Value = DEFAULT_VALUE) -> Value:
    """Resolve the value claimed by *sender* for node *seq*, applying masking
    and the default-value substitution for inappropriate messages.

    Helper shared by the protocol implementations when they populate a new
    tree level from an inbox.
    """
    from .values import coerce_value  # local import to avoid cycle at module load

    if sender in suspects or message is None:
        return masked_value
    claimed = message.value_for(seq)
    return coerce_value(claimed, domain)
