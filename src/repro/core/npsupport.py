"""Optional-numpy support: lazy import plus the shared value↔code codec.

The ``"numpy"`` EIG engine stores tree levels as small-integer ndarrays.  Two
pieces of shared infrastructure live here so that every other module can stay
import-clean when numpy is absent:

* **Lazy numpy access.**  :func:`get_numpy` imports numpy at most once and
  caches the result (``None`` when unavailable); :func:`have_numpy` and
  :func:`require_numpy` are the gate used by the engine registry and by the
  numpy code paths.  Importing :mod:`repro` never imports numpy — only
  selecting the ``"numpy"`` engine does.

* **The value codec.**  Protocol values are arbitrary hashable objects (ints
  in every example), so the ndarray buffers hold dense integer *codes* instead
  of the values themselves.  One process-wide :class:`ValueCodec` interns
  values in first-seen order, which makes codes *globally consistent*: a
  receiver can copy a sender's code buffer by fancy indexing without any
  translation, because both trees read and write the same table.  Three codes
  are fixed by construction:

  - :data:`MISSING_CODE` (0) — an absent node (the ndarray twin of the flat
    engine's ``MISSING`` sentinel; never visible through the public tree API);
  - :data:`DEFAULT_CODE` (1) — :data:`~repro.core.values.DEFAULT_VALUE`;
  - :data:`BOTTOM_CODE` (2) — :data:`~repro.core.values.BOTTOM` (appears only
    in ``resolve'`` scratch buffers, never inside a tree).

  The codec is append-only and tiny (one entry per distinct value ever stored
  in any tree of the process — domains have a handful of elements), so it is
  shared rather than per-tree.
"""

from __future__ import annotations

from functools import lru_cache as _lru_cache
from typing import Dict, Hashable, List

from .values import BOTTOM, DEFAULT_VALUE, Value

_NUMPY = None
_NUMPY_CHECKED = False


def get_numpy():
    """The numpy module, or ``None`` when it is not installed (cached)."""
    global _NUMPY, _NUMPY_CHECKED
    if not _NUMPY_CHECKED:
        _NUMPY_CHECKED = True
        try:
            import numpy
        except ImportError:  # pragma: no cover - exercised on bare images
            numpy = None
        _NUMPY = numpy
    return _NUMPY


def have_numpy() -> bool:
    """``True`` iff numpy can be imported (the ``"numpy"`` engine gate)."""
    return get_numpy() is not None


def require_numpy():
    """Numpy, or a clear error pointing at the engine gate."""
    numpy = get_numpy()
    if numpy is None:
        raise RuntimeError(
            "the 'numpy' EIG engine requires numpy, which is not installed; "
            "use the 'fast' engine (the no-dependency default) instead")
    return numpy


#: Code of an absent node in an ndarray level buffer.
MISSING_CODE = 0
#: Code of :data:`~repro.core.values.DEFAULT_VALUE`.
DEFAULT_CODE = 1
#: Code of the ``⊥`` sentinel (conversion scratch only, never stored).
BOTTOM_CODE = 2

#: dtype of every code buffer.  int32 leaves the offset arithmetic of the
#: per-level ``bincount`` majority votes comfortably inside the dtype while
#: staying 16× smaller than object pointers.
CODE_DTYPE_NAME = "int32"

#: Below this many stacked elements the batched kernels switch to their
#: scalar (pure-python) paths: ndarray call overhead dominates tiny levels —
#: the very regime the batched executor exists to win.  Shared by the
#: trigger, vote, and claim-routing fast paths so the crossover is tuned in
#: one place.
SMALL_KERNEL_ELEMENTS = 512


class ValueCodec:
    """Append-only interning table between protocol values and integer codes."""

    __slots__ = ("_code_of", "_value_of")

    def __init__(self) -> None:
        self._code_of: Dict[Value, int] = {}
        # Slot 0 is reserved for MISSING and never maps back to a value.
        self._value_of: List[Value] = [None]
        assert self.code(DEFAULT_VALUE) == DEFAULT_CODE
        assert self.code(BOTTOM) == BOTTOM_CODE

    def code(self, value: Value) -> int:
        """The code of *value*, interning it on first sight."""
        code = self._code_of.get(value)
        if code is None:
            code = len(self._value_of)
            self._code_of[value] = code
            self._value_of.append(value)
        return code

    def value(self, code: int) -> Value:
        """The value behind *code* (``None`` for :data:`MISSING_CODE`)."""
        return self._value_of[code]

    def __len__(self) -> int:
        """Number of code slots (``max assigned code + 1``)."""
        return len(self._value_of)

    # -- bulk helpers (numpy required) ---------------------------------------
    def encode_buffer(self, values, missing=None):
        """Encode an iterable of values into a fresh code ndarray.

        *missing* (identity-compared) marks entries to encode as
        :data:`MISSING_CODE` — callers pass the flat engine's sentinel.
        """
        np = require_numpy()
        values = list(values)
        return np.fromiter(
            (MISSING_CODE if v is missing else self.code(v) for v in values),
            dtype=CODE_DTYPE_NAME, count=len(values))

    def decode_buffer(self, codes, missing=None) -> List[Value]:
        """Decode a code ndarray back into a list of values.

        :data:`MISSING_CODE` entries decode to *missing* (default ``None``).
        """
        table = self._value_of
        return [missing if c == MISSING_CODE else table[c]
                for c in codes.tolist()]

    def domain_mask(self, domain):
        """Boolean lookup table over codes: ``mask[c]`` iff ``value(c) ∈ domain``.

        Sized to the codec at call time, so every code that can appear in an
        already-built buffer is covered (the codec is append-only).
        """
        np = require_numpy()
        # Intern the domain first: code() appends on first sight, and a
        # domain value the run has not produced yet would otherwise be
        # assigned a code one past the mask built from the pre-loop length.
        codes = [self.code(value) for value in domain]
        mask = np.zeros(len(self._value_of), dtype=bool)
        for code in codes:
            mask[code] = True
        return mask

    # -- cross-process synchronisation ---------------------------------------
    def snapshot(self, start: int = 1) -> List[Value]:
        """The interned values of codes ``[start, len)``, in code order.

        The sharded run executor ships these slices to its worker processes,
        whose codecs replay them with :meth:`adopt` so that code ndarrays
        serialized on one side decode identically on the other.
        """
        return list(self._value_of[start:])

    def adopt(self, values, start: int) -> None:
        """Replay a peer codec's :meth:`snapshot` slice beginning at *start*.

        The codec is append-only and interns in first-seen order, so a fresh
        (or fork-inherited) codec that adopts every slice a peer sends, in
        order, assigns byte-identical codes.  A mismatch means the two sides
        interned values independently — a protocol bug — and raises rather
        than silently decoding garbage.
        """
        for offset, value in enumerate(values):
            expected = start + offset
            if expected < len(self._value_of):
                if self._value_of[expected] == value:
                    continue
                raise RuntimeError(
                    f"value codec desync: code {expected} is "
                    f"{self._value_of[expected]!r} here but {value!r} on the "
                    f"peer")
            code = self.code(value)
            if code != expected:
                raise RuntimeError(
                    f"value codec desync: {value!r} interned as code {code}, "
                    f"peer expected {expected}")


#: The process-wide codec shared by every numpy-engine tree and message.
VALUE_CODEC = ValueCodec()


def shard_bounds(count: int, shards: int) -> List[tuple]:
    """Balanced contiguous ``[start, stop)`` row ranges for a sharded run.

    Splits *count* stacked rows into at most *shards* non-empty slices whose
    sizes differ by at most one — the partition the sharded run executor uses
    to hand each worker process a contiguous block of a
    :class:`BatchedEIGState` row stack.  Row order (participants first, then
    shadow rows) is preserved, so global row indices are
    ``range(start, stop)`` for each bound.
    """
    if count <= 0 or shards <= 0:
        return []
    shards = min(shards, count)
    base, extra = divmod(count, shards)
    bounds = []
    start = 0
    for i in range(shards):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


class BatchedEIGState:
    """Stacked level buffers for every participating processor of one run.

    The batched run executor (:mod:`repro.runtime.batched`) stores, per tree
    level, a single ``(participants, level_size)`` int32 code ndarray — row
    ``i`` is exactly the level buffer participant ``i``'s
    :class:`~repro.core.tree.NumpyEIGTree` would hold at the same point of the
    execution.  One 2-D kernel per round then steps every correct processor at
    once: gathering is a single fancy-indexed read over the stacked claims,
    and resolve / fault discovery reshape the whole stack into one
    ``(participants · parents, branch)`` vote matrix.

    The aliasing discipline matches the per-processor trees: a level stack may
    be mutated only during the round that appended it (gathering + masking of
    freshly discovered senders); every later rewrite (the shift back to a
    root) installs new arrays, so a row view wrapped by an outgoing
    :class:`~repro.runtime.messages.NumpyLevelMessage` is immutable from the
    moment it is broadcast.

    **Invariant: levels are stored whole.**  Roots come from the coercion
    rule and appended levels from the batched gather (which substitutes the
    default), so :data:`MISSING_CODE` never appears in a stack.  The batched
    discovery and conversion kernels rely on this to skip the
    missing-substitution passes; callers appending stacks by other means must
    uphold it.
    """

    __slots__ = ("index", "count", "_levels")

    def __init__(self, index, count: int) -> None:
        require_numpy()
        self.index = index
        self.count = count
        self._levels: List[object] = []

    @property
    def num_levels(self) -> int:
        return len(self._levels)

    def raw_stack(self, level: int):
        """The ``(participants, level_size)`` code stack of *level*, by reference."""
        return self._levels[level - 1]

    def row_view(self, level: int, i: int):
        """Participant *i*'s level buffer: a 1-D view into the level stack."""
        return self._levels[level - 1][i]

    def set_roots(self, codes) -> None:
        """Install the per-participant root codes as the (only) level 1."""
        np = require_numpy()
        roots = np.asarray(codes, dtype=CODE_DTYPE_NAME).reshape(self.count, 1)
        self._levels = [roots]

    #: ``shift_{k→1}`` for the whole run: same operation as :meth:`set_roots`.
    reset_to_roots = set_roots

    def append_level(self, stack) -> None:
        """Install *stack* as the next level (shape-checked against the index)."""
        expected = (self.count, self.index.level_size(self.num_levels + 1))
        if tuple(stack.shape) != expected:
            raise ValueError(
                f"level {self.num_levels + 1} stack must have shape "
                f"{expected}, got {tuple(stack.shape)}")
        self._levels.append(stack)

    def row_tree(self, i: int, meter=None):
        """Participant *i*'s state as a standalone :class:`NumpyEIGTree`.

        Copies the row buffers (the returned tree owns its levels); used by
        tests and reporting to reuse the per-processor accessors/kernels
        against a batched execution.
        """
        from .tree import NumpyEIGTree
        return NumpyEIGTree.adopt_levels(
            self.index.source, self.index.processors,
            [stack[i].copy() for stack in self._levels], meter)


# ---------------------------------------------------------------------------
# The shared vote kernel: every per-level majority pass of the numpy engine
# (resolve, resolve', the Fault Discovery Rule, Algorithm C's shift_{3→2})
# goes through these three helpers, so vote semantics live in exactly one
# place.
# ---------------------------------------------------------------------------

def vote_windows(codes, rows: int, branch: int):
    """Reshape a level's code buffer into its ``(rows, branch)`` vote matrix.

    (:func:`window_tallies` picks an offset dtype wide enough for its own
    arithmetic, so no upcast happens here.)
    """
    return codes.reshape(rows, branch)


def window_tallies(windows, num_codes: int):
    """Per-window vote tallies: ``tallies[i, c]`` counts code ``c`` in row ``i``.

    One ``bincount`` over offset codes (row ``i`` shifted by ``i·num_codes``)
    tallies every window of the level at once.  The offset arithmetic runs in
    int64: it cannot overflow there, and ``bincount`` consumes native intp
    input directly instead of recasting.
    """
    np = require_numpy()
    rows = windows.shape[0]
    total = rows * num_codes
    if rows <= _OFFSET_CACHE_ROWS:
        offsets = _window_offsets(rows, num_codes)
    else:
        offsets = (np.arange(rows, dtype=np.int64) * num_codes)[:, None]
    flat = (windows + offsets).reshape(-1)
    return np.bincount(flat, minlength=total).reshape(rows, num_codes)


#: Offset columns are cached only below this row count: for small windows
#: the arange/multiply pair is a measurable share of the kernel, while a
#: large cached column would just pin memory for the process lifetime.
_OFFSET_CACHE_ROWS = 4096


@_lru_cache(maxsize=128)
def _window_offsets(rows: int, num_codes: int):
    """The ``(rows, 1)`` offset column of :func:`window_tallies`, cached.

    Row counts repeat every round of a run (they depend only on the tree
    shape and participant count), so the arange/multiply pair is worth
    keeping for the small windows it dominates.
    """
    np = require_numpy()
    return (np.arange(rows, dtype=np.int64) * num_codes)[:, None]


def strict_majority(tallies, branch: int):
    """Per-row ``(top code, holds a strict majority of branch)`` arrays.

    A strict majority is unique when it exists, so the argmax tie-break never
    affects rows where the second array is ``True``.
    """
    np = require_numpy()
    best = tallies.argmax(axis=1)
    best_count = tallies[np.arange(tallies.shape[0]), best]
    return best, 2 * best_count > branch
