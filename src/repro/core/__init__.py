"""The paper's algorithms and their shared data structures."""

from __future__ import annotations

from .algorithm_a import (AlgorithmASpec, algorithm_a_blocks,
                          algorithm_a_max_message_entries, algorithm_a_resilience,
                          algorithm_a_rounds, algorithm_a_schedule)
from .algorithm_b import (AlgorithmBSpec, algorithm_b_blocks,
                          algorithm_b_max_message_entries, algorithm_b_resilience,
                          algorithm_b_rounds, algorithm_b_schedule)
from .algorithm_c import (AlgorithmCProcessor, AlgorithmCSpec,
                          algorithm_c_max_message_entries, algorithm_c_resilience,
                          algorithm_c_rounds)
from .engine import (available_engines, get_default_engine, numpy_available,
                     set_default_engine, use_engine, validate_engine)
from .exponential import (ExponentialSpec, exponential_max_message_entries,
                          exponential_resilience, exponential_rounds,
                          exponential_schedule)
from .fault_discovery import FaultTracker, discover_at_level, discover_during_conversion
from .fault_masking import discover_and_mask, mask_inbox, mask_level_entries
from .hybrid import (HybridParameters, HybridProcessor, HybridSpec,
                     hybrid_parameters, hybrid_rounds, hybrid_rounds_asymptotic,
                     hybrid_rounds_closed_form, hybrid_schedule)
from .protocol import AgreementProtocol, ProtocolConfig, ProtocolSpec
from .resolve import make_resolve_prime, resolve, resolve_all, resolve_prime
from .sequences import (LabelSequence, ProcessorId, SequenceIndex,
                        child_labels, corresponding_processor,
                        count_sequences_of_length, sequence_index,
                        sequences_of_length)
from .shifting import Segment, ShiftSchedule, ShiftingEIGProcessor
from .tree import (FlatEIGTree, FlatRepetitionTree, InfoGatheringTree,
                   NumpyEIGTree, NumpyRepetitionTree, RepetitionTree,
                   make_tree)
from .values import BOTTOM, DEFAULT_VALUE, Value, coerce_value, default_domain, is_bottom

__all__ = [
    # values & sequences
    "Value", "DEFAULT_VALUE", "BOTTOM", "is_bottom", "coerce_value", "default_domain",
    "ProcessorId", "LabelSequence", "child_labels", "corresponding_processor",
    "sequences_of_length", "count_sequences_of_length",
    # engines
    "get_default_engine", "set_default_engine", "use_engine", "validate_engine",
    "available_engines", "numpy_available",
    "SequenceIndex", "sequence_index",
    # trees & conversions
    "InfoGatheringTree", "RepetitionTree", "FlatEIGTree", "FlatRepetitionTree",
    "NumpyEIGTree", "NumpyRepetitionTree", "make_tree",
    "resolve", "resolve_prime", "make_resolve_prime", "resolve_all",
    # discovery & masking
    "FaultTracker", "discover_at_level", "discover_during_conversion",
    "discover_and_mask", "mask_inbox", "mask_level_entries",
    # protocol machinery
    "AgreementProtocol", "ProtocolConfig", "ProtocolSpec",
    "Segment", "ShiftSchedule", "ShiftingEIGProcessor",
    # algorithms
    "ExponentialSpec", "exponential_resilience", "exponential_rounds",
    "exponential_schedule", "exponential_max_message_entries",
    "AlgorithmASpec", "algorithm_a_resilience", "algorithm_a_rounds",
    "algorithm_a_blocks", "algorithm_a_schedule", "algorithm_a_max_message_entries",
    "AlgorithmBSpec", "algorithm_b_resilience", "algorithm_b_rounds",
    "algorithm_b_blocks", "algorithm_b_schedule", "algorithm_b_max_message_entries",
    "AlgorithmCSpec", "AlgorithmCProcessor", "algorithm_c_resilience",
    "algorithm_c_rounds", "algorithm_c_max_message_entries",
    "HybridSpec", "HybridProcessor", "HybridParameters", "hybrid_parameters",
    "hybrid_rounds", "hybrid_rounds_closed_form", "hybrid_rounds_asymptotic",
    "hybrid_schedule",
]
