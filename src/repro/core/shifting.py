"""The shift operator and the generic shifting EIG processor.

Definition 1 of the paper: a *shifting* ``shift_{k→j}`` converts the data
structures appropriate to the end of round ``k`` of one algorithm into those
appropriate to the end of round ``j`` of another.  All of the paper's
algorithms (the Exponential Algorithm, Algorithm A, Algorithm B, and the A/B
portion of the hybrid) are instances of one machine: run Information
Gathering for a block of rounds, then apply ``shift_{b+1→1}`` — convert the
tree with ``resolve`` or ``resolve'`` and collapse it back to a root holding
the new preferred value — while the auxiliary structure ``L_p`` (the list of
discovered faults) is carried across shifts unchanged.

:class:`ShiftSchedule` describes such an execution as a sequence of
*segments* (blocks); :class:`ShiftingEIGProcessor` executes it.  The concrete
algorithm modules (:mod:`.exponential`, :mod:`.algorithm_a`,
:mod:`.algorithm_b`, :mod:`.hybrid`) only build schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .engine import FAST, NUMPY, validate_engine
from .fault_discovery import (FaultTracker, discover_during_conversion,
                              discover_during_conversion_flat,
                              discover_during_conversion_numpy)
from .fault_masking import (discover_and_mask, gather_level_flat,
                            gather_level_numpy, mask_inbox)
from .protocol import AgreementProtocol, ProtocolConfig
from .resolve import flat_resolve_levels, numpy_resolve_levels, resolve_all
from .sequences import LabelSequence, ProcessorId
from .tree import InfoGatheringTree, make_tree
from .values import DEFAULT_VALUE, Value, coerce_value, is_bottom
from ..runtime.errors import ConfigurationError, ProtocolViolationError
from ..runtime.messages import (Inbox, Message, Outbox, broadcast,
                                broadcast_message)

#: Conversion function names accepted by a :class:`Segment`.
CONVERSIONS = ("resolve", "resolve_prime")


@dataclass(frozen=True)
class Segment:
    """One block of Information Gathering rounds followed by a shift.

    Attributes
    ----------
    rounds:
        Number of Information Gathering rounds in the block (the block builds
        a tree of ``rounds + 1`` levels before converting).
    conversion:
        Conversion function applied by the shift: ``"resolve"`` (recursive
        majority) or ``"resolve_prime"`` (Algorithm A's ``t+1`` threshold).
    conversion_discovery:
        Whether the Fault Discovery Rule During Conversion is applied while
        shifting (Algorithm A does, Algorithm B does not).
    """

    rounds: int
    conversion: str = "resolve"
    conversion_discovery: bool = False

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ConfigurationError("a segment needs at least one round")
        if self.conversion not in CONVERSIONS:
            raise ConfigurationError(
                f"unknown conversion {self.conversion!r}; expected one of {CONVERSIONS}")


@dataclass(frozen=True)
class ShiftSchedule:
    """A full execution plan: the initial source round plus a list of segments."""

    segments: Tuple[Segment, ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ConfigurationError("a schedule needs at least one segment")

    @property
    def total_rounds(self) -> int:
        """Rounds of communication: the initial round plus every block round."""
        return 1 + sum(segment.rounds for segment in self.segments)

    def segment_end_rounds(self) -> Dict[int, Segment]:
        """Map from the global round ending each segment to that segment."""
        ends: Dict[int, Segment] = {}
        round_number = 1
        for segment in self.segments:
            round_number += segment.rounds
            ends[round_number] = segment
        return ends

    def block_lengths(self) -> List[int]:
        return [segment.rounds for segment in self.segments]

    @staticmethod
    def uniform(block_lengths: Sequence[int], conversion: str,
                conversion_discovery: bool = False) -> "ShiftSchedule":
        """Build a schedule in which every segment shares one conversion."""
        return ShiftSchedule(tuple(
            Segment(rounds, conversion, conversion_discovery)
            for rounds in block_lengths))


class ShiftingEIGProcessor(AgreementProtocol):
    """A processor executing Exponential Information Gathering under a
    :class:`ShiftSchedule`, with the Fault Discovery and Fault Masking Rules.

    The Exponential Algorithm is the single-segment schedule ``[t]``;
    Algorithms A and B are multi-segment schedules; the hybrid's A→B portion
    is a schedule whose segments change conversion function midway.

    Parameters
    ----------
    decide_at_end:
        When ``True`` (standalone algorithms) the processor records an
        irreversible decision after the final conversion.  The hybrid embeds
        this machine as its first phase and sets this to ``False`` so the
        preferred value can be handed to Algorithm C instead.
    engine:
        ``"fast"`` (flat-array buffers, batched conversion, by-reference
        level messages) or ``"reference"`` (the dict-based executable
        specification).  ``None`` selects the process default
        (:func:`repro.core.engine.get_default_engine`).  Both engines produce
        identical decisions, discoveries and metrics.
    """

    def __init__(self, pid: ProcessorId, config: ProtocolConfig,
                 schedule: ShiftSchedule, decide_at_end: bool = True,
                 enable_fault_discovery: bool = True,
                 engine: Optional[str] = None) -> None:
        super().__init__(pid, config)
        self.schedule = schedule
        self.decide_at_end = decide_at_end
        self.enable_fault_discovery = enable_fault_discovery
        self.engine = validate_engine(engine)
        self._fast = self.engine == FAST
        self._numpy = self.engine == NUMPY
        self._array_backed = self._fast or self._numpy
        self.tree = make_tree(config.source, config.processors, self.engine)
        self._domain_set = frozenset(v for v in config.domain
                                     if not is_bottom(v))
        self.tracker = FaultTracker(pid, config.t)
        self._segment_ends = schedule.segment_end_rounds()
        #: round -> number of newly discovered faults (for block-progress experiments)
        self.discovery_log: Dict[int, int] = {}
        #: round -> preferred value after the conversion ending that round
        self.preferred_log: Dict[int, Value] = {}

    # -- AgreementProtocol API ------------------------------------------------
    @property
    def total_rounds(self) -> int:
        return self.schedule.total_rounds

    def outgoing(self, round_number: int) -> Outbox:
        self._check_round(round_number)
        if round_number == 1:
            if self.pid != self.config.source:
                return {}
            entries = {self.tree.root: self.config.initial_value}
            return broadcast(entries, self.pid, round_number,
                             self.config.processors)
        if self.pid == self.config.source:
            # The source decides in round 1 and halts (it never sends again).
            return {}
        if self._array_backed and self.tree.num_levels > 0:
            # Wrap the leaf level by reference: one LevelMessage object is
            # shared by every destination and the level buffer is never
            # copied (the tree installs a fresh buffer on every later rewrite,
            # so the wrapped buffer is immutable from here on).
            message = self.tree.level_message(self.tree.num_levels, self.pid,
                                              round_number)
            return broadcast_message(message, self.config.processors)
        return broadcast(self.tree.leaves(), self.pid, round_number,
                         self.config.processors)

    def incoming(self, round_number: int, inbox: Inbox) -> None:
        if self.pid == self.config.source:
            if round_number == 1:
                self._decide(self.config.initial_value)
            return
        if round_number == 1:
            self._store_root(inbox.get(self.config.source))
            self._maybe_convert(round_number)
            return
        self._gather(round_number, inbox)
        self._maybe_convert(round_number)

    # -- information gathering ---------------------------------------------------
    def _store_root(self, source_message: Optional[Message]) -> None:
        claimed = None
        if source_message is not None:
            claimed = source_message.value_for(self.tree.root)
        self.tree.set_root(coerce_value(claimed, self.config.domain))

    def _gather(self, round_number: int, inbox: Inbox) -> None:
        """Add one level to the tree from the round's inbox, then run the
        Fault Discovery and Fault Masking Rules to a fixpoint."""
        level = self.tree.num_levels + 1
        if self._array_backed:
            self._gather_array(level, inbox)
        else:
            self._gather_reference(level, inbox)
        if not self.enable_fault_discovery:
            return
        newly = discover_and_mask(self.tree, level, self.tracker, round_number)
        if newly:
            self.discovery_log[round_number] = (
                self.discovery_log.get(round_number, 0) + len(newly))

    def _gather_reference(self, level: int, inbox: Inbox) -> None:
        """The executable specification: grow via a per-node claim callback."""
        suspects = self.tracker.suspects
        masked = mask_inbox(inbox, suspects)
        domain = self.config.domain

        def claimed_value(parent: LabelSequence, child: ProcessorId) -> Value:
            if child == self.pid:
                # A processor's own child reflects its own stored value; no
                # message to itself is needed.
                return self.tree.value(parent)
            message = masked.get(child)
            if message is None:
                return DEFAULT_VALUE
            return coerce_value(message.value_for(parent), domain)

        self.tree.grow_level(level, claimed_value)

    def _gather_array(self, level: int, inbox: Inbox) -> None:
        """Populate the new level's buffer directly from the inbox (see
        :func:`~repro.core.fault_masking.gather_level_flat` and its ndarray
        twin :func:`~repro.core.fault_masking.gather_level_numpy`); the only
        special label is the processor's own, whose children echo its own
        stored values (no self-message)."""
        gather = gather_level_numpy if self._numpy else gather_level_flat
        gather(self.tree, level, inbox, self.tracker,
               self._domain_set, echo_labels=(self.pid,))

    # -- shifting ---------------------------------------------------------------
    def _maybe_convert(self, round_number: int) -> None:
        segment = self._segment_ends.get(round_number)
        if segment is None:
            return
        if self._array_backed:
            if self._numpy:
                converted_levels = numpy_resolve_levels(
                    self.tree, segment.conversion, self.config.t)
                discover = discover_during_conversion_numpy
            else:
                converted_levels = flat_resolve_levels(
                    self.tree, segment.conversion, self.config.t)
                discover = discover_during_conversion_flat
            if segment.conversion_discovery and self.enable_fault_discovery:
                fresh = discover(
                    self.tree.index, converted_levels, self.tree.num_levels,
                    self.tracker.suspects, self.config.t,
                    meter=self.tree.meter)
                added = self.tracker.add_all(fresh, round_number)
                if added:
                    self.discovery_log[round_number] = (
                        self.discovery_log.get(round_number, 0) + len(added))
            new_root = converted_levels[0][0]
            if self._numpy:
                from .npsupport import VALUE_CODEC
                new_root = VALUE_CODEC.value(int(new_root))
        else:
            converted = resolve_all(self.tree, segment.conversion,
                                    self.config.t)
            if segment.conversion_discovery and self.enable_fault_discovery:
                fresh = discover_during_conversion(
                    self.tree, converted, self.tracker.suspects, self.config.t,
                    meter=self.tree.meter)
                added = self.tracker.add_all(fresh, round_number)
                if added:
                    self.discovery_log[round_number] = (
                        self.discovery_log.get(round_number, 0) + len(added))
            new_root = converted[self.tree.root]
        if is_bottom(new_root):
            new_root = DEFAULT_VALUE
        self.tree.reset_to_root(new_root)
        self.preferred_log[round_number] = new_root
        if round_number == self.total_rounds and self.decide_at_end:
            self._decide(new_root)

    # -- introspection -------------------------------------------------------------
    def preferred_value(self) -> Value:
        if self.pid == self.config.source:
            return self.config.initial_value
        return self.tree.root_value()

    def discovered_faults(self) -> Sequence[ProcessorId]:
        return tuple(sorted(self.tracker.suspects))

    def computation_units(self) -> int:
        return self.tree.meter.units

    def finished_information_gathering(self) -> bool:
        return self._last_round_seen >= self.total_rounds


def run_rounds_for_blocks(block_lengths: Sequence[int]) -> int:
    """Total communication rounds for a schedule with the given block lengths."""
    return 1 + sum(block_lengths)
