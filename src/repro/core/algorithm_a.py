"""Algorithm A (Theorem 2 of the paper).

Resilience ``t_A = ⌊(n − 1) / 3⌋`` — the optimum for unauthenticated Byzantine
agreement.  For a block parameter ``2 < b ≤ t``, Algorithm A(b) is the
repeated application of ``shift_{b+1→1}`` to the Exponential Algorithm using
the *threshold* conversion ``resolve'`` (a value must appear at least
``t + 1`` times among the converted children and must be unique, otherwise the
node converts to ``⊥``), plus the Fault Discovery Rule During Conversion:

* one initial round,
* ``⌊(t − 1)/(b − 2)⌋`` blocks of ``b`` rounds, each ending with
  ``tree(s) := resolve'(s)`` (with ``⊥`` mapped to the default value),
* when ``b − 2`` does not divide ``t − 1``, one final block of
  ``t + 1 − (b − 2)⌊(t − 1)/(b − 2)⌋`` rounds,
* decide ``resolve'(s)``.

Total: ``t + 2 + 2⌊(t − 1)/(b − 2)⌋`` rounds with ``O(n^b)``-bit messages and
``O(n^{b+1}(t − 1)/(b − 2))`` local computation.  A block that fails to yield
a persistent value globally detects at least ``b − 2`` new faults besides the
source (Corollary 3), which is why the denominator is ``b − 2`` rather than
Algorithm B's ``b − 1`` — the price paid for the higher resilience.

``b = t`` degenerates to the Exponential Algorithm run with ``resolve'``.
"""

from __future__ import annotations

from typing import List

from .protocol import AgreementProtocol, ProtocolConfig, ProtocolSpec
from .sequences import ProcessorId
from .shifting import ShiftSchedule, ShiftingEIGProcessor
from ..runtime.errors import ConfigurationError


def algorithm_a_resilience(n: int) -> int:
    """``t_A = ⌊(n − 1) / 3⌋``."""
    return (n - 1) // 3


def algorithm_a_blocks(t: int, b: int) -> List[int]:
    """Block lengths (after the initial round) of Algorithm A(b)."""
    if not 2 < b <= t:
        raise ConfigurationError(
            f"Algorithm A requires 2 < b ≤ t (got b={b}, t={t})")
    if b == t:
        return [t]
    full_blocks = (t - 1) // (b - 2)
    remainder = (t - 1) - (b - 2) * full_blocks
    blocks = [b] * full_blocks
    if remainder:
        blocks.append(remainder + 2)
    return blocks


def algorithm_a_rounds(t: int, b: int) -> int:
    """Worst-case rounds of Algorithm A(b).

    Equals ``t + 2 + 2⌊(t − 1)/(b − 2)⌋`` when ``(b − 2) ∤ (t − 1)`` (and
    correspondingly fewer otherwise); ``t + 1`` when ``b = t``.
    """
    return 1 + sum(algorithm_a_blocks(t, b))


def algorithm_a_max_message_entries(n: int, b: int) -> int:
    """Entries of the largest message: leaves of a ``b``-level tree, ``O(n^b)``."""
    count = 1
    for i in range(1, b):
        count *= max(1, n - i)
    return count


def algorithm_a_schedule(t: int, b: int) -> ShiftSchedule:
    """The :class:`ShiftSchedule` realising Algorithm A(b)."""
    return ShiftSchedule.uniform(algorithm_a_blocks(t, b), "resolve_prime",
                                 conversion_discovery=True)


class AlgorithmASpec(ProtocolSpec):
    """Protocol spec for Algorithm A with block parameter *b*."""

    def __init__(self, b: int) -> None:
        self.b = b
        self.name = f"algorithm-a(b={b})"

    def validate(self, config: ProtocolConfig) -> None:
        if config.t > algorithm_a_resilience(config.n):
            raise ConfigurationError(
                f"Algorithm A requires n ≥ 3t + 1 (got n={config.n}, t={config.t})")
        if not 2 < self.b <= config.t:
            raise ConfigurationError(
                f"Algorithm A requires 2 < b ≤ t (got b={self.b}, t={config.t})")

    def total_rounds(self, config: ProtocolConfig) -> int:
        return algorithm_a_rounds(config.t, self.b)

    def build(self, pid: ProcessorId, config: ProtocolConfig) -> AgreementProtocol:
        self.validate(config)
        return ShiftingEIGProcessor(
            pid, config, algorithm_a_schedule(config.t, self.b))

    def describe(self) -> str:
        return f"{self.name}: t+2+2⌊(t−1)/(b−2)⌋ rounds, O(n^b) bits"
