"""The Hybrid Algorithm (Theorem 1, the Main Theorem).

The hybrid tolerates ``t ≤ t_A = ⌊(n − 1)/3⌋`` faults — the resilience of
Algorithm A — yet finishes faster than Algorithm A by *shifting down* through
algorithms of strictly lower standalone resilience:

1. run Algorithm A(b) for exactly ``k_AB`` rounds; ``tree(s) := resolve'(s)``;
2. run Algorithm B(b) for exactly ``k_BC`` rounds (beginning with its
   round 2); ``tree(s) := resolve(s)``;
3. run Algorithm C for exactly ``t − t_AC + 1`` rounds (beginning with its
   round 2); decide ``resolve(s)``.

The shifts are safe because of two facts proved in the paper:

* **Persistence** — once sufficiently many correct processors share a
  preferred value, the Strong Persistence Lemma (and its Algorithm C
  analogue, Lemma 6) keeps that value through every later conversion, so the
  shift cannot destroy an agreement already in the making;
* **Fault detection** — if no persistent value has emerged, enough faults
  have been *globally detected* (at least ``t_AB`` by round ``k_AB``, at
  least ``t_AC`` by round ``k_AB + k_BC``) and thereafter masked that the
  lower-resilience algorithm's progress argument (Corollary 1 for B,
  Proposition 4's per-round dichotomy for C) applies even though the total
  number of faults exceeds its standalone resilience.

``t_AB`` is the least value with ``n − 2t + t_AB > ⌊(n − 1)/2⌋`` (so
Corollary 1 survives the shift into B), and ``t_AC`` the least value with
``(t − t_AC)² < n/2 − t`` and ``n − 2t + t_AC > n/2`` (so Proposition 4's
argument survives the shift into C).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .algorithm_c import AlgorithmCProcessor
from .protocol import AgreementProtocol, ProtocolConfig, ProtocolSpec
from .sequences import ProcessorId
from .shifting import Segment, ShiftSchedule, ShiftingEIGProcessor
from .values import Value
from ..runtime.errors import ConfigurationError
from ..runtime.messages import Inbox, Outbox


@dataclass(frozen=True)
class HybridParameters:
    """All derived quantities of the hybrid algorithm for one ``(n, t, b)``."""

    n: int
    t: int
    b: int
    t_ab: int
    t_ac: int
    t_bc: int
    a_blocks: Tuple[int, ...]
    b_blocks: Tuple[int, ...]
    k_ab: int
    k_bc: int
    c_rounds: int

    @property
    def total_rounds(self) -> int:
        return self.k_ab + self.k_bc + self.c_rounds

    @property
    def phase_boundaries(self) -> Tuple[int, int, int]:
        """Global round numbers at which the A, B and C phases end."""
        return (self.k_ab, self.k_ab + self.k_bc, self.total_rounds)


def _threshold_t_ab(n: int, t: int) -> int:
    """Least ``t_AB ≥ 1`` with ``n − 2t + t_AB > ⌊(n − 1)/2⌋`` (clamped to ``t``)."""
    half = (n - 1) // 2
    needed = half + 1 - (n - 2 * t)
    return max(1, min(t, needed))


def _threshold_t_ac(n: int, t: int, t_ab: int) -> int:
    """Least ``t_AC ≥ t_AB`` satisfying the shift-into-C conditions (clamped to ``t``)."""
    for candidate in range(t_ab, t + 1):
        slack_ok = (t - candidate) ** 2 < n / 2 - t
        majority_ok = (n - 2 * t + candidate) * 2 > n
        if slack_ok and majority_ok:
            return candidate
    return t


def hybrid_parameters(n: int, t: int, b: int) -> HybridParameters:
    """Compute every constant of the hybrid algorithm for ``(n, t, b)``.

    Raises :class:`ConfigurationError` when ``n < 3t + 1``, ``t < 3``, or
    ``b`` is outside ``2 < b ≤ t``.
    """
    if n < 3 * t + 1:
        raise ConfigurationError(
            f"the hybrid algorithm requires n ≥ 3t + 1 (got n={n}, t={t})")
    if t < 3:
        raise ConfigurationError(
            f"the hybrid algorithm requires t ≥ 3 so that 2 < b ≤ t (got t={t})")
    if not 2 < b <= t:
        raise ConfigurationError(
            f"the hybrid algorithm requires 2 < b ≤ t (got b={b}, t={t})")

    t_ab = _threshold_t_ab(n, t)
    t_ac = _threshold_t_ac(n, t, t_ab)
    t_bc = t_ac - t_ab

    # Phase A: round 1, x blocks of b rounds, and a final block of y + 2 rounds,
    # where t_AB − 1 = (b − 2)x + y; k_AB = 2 + t_AB + 2x.
    x = (t_ab - 1) // (b - 2)
    y = (t_ab - 1) - (b - 2) * x
    a_blocks: List[int] = [b] * x + [y + 2]
    k_ab = 1 + sum(a_blocks)

    # Phase B: x' blocks of b rounds and a final block of y' + 1 rounds,
    # where t_BC = (b − 1)x' + y'; k_BC = 1 + t_BC + x'.
    x_prime = t_bc // (b - 1)
    y_prime = t_bc - (b - 1) * x_prime
    b_blocks: List[int] = [b] * x_prime + [y_prime + 1]
    k_bc = sum(b_blocks)

    c_rounds = t - t_ac + 1

    return HybridParameters(
        n=n, t=t, b=b, t_ab=t_ab, t_ac=t_ac, t_bc=t_bc,
        a_blocks=tuple(a_blocks), b_blocks=tuple(b_blocks),
        k_ab=k_ab, k_bc=k_bc, c_rounds=c_rounds)


def hybrid_rounds(n: int, t: int, b: int) -> int:
    """Worst-case rounds of the hybrid: ``k_AB + k_BC + (t − t_AC) + 1``."""
    return hybrid_parameters(n, t, b).total_rounds


def hybrid_rounds_closed_form(n: int, t: int, b: int) -> int:
    """The Main Theorem's closed-form round count for comparison.

    ``t + 2⌊(t_AB − 1)/(b − 2)⌋ + ⌊t_BC/(b − 1)⌋ + (t_AB + t_BC − t_AC) + 4``
    with the same thresholds as :func:`hybrid_parameters`; asymptotically
    ``t + O(t/b) + O(√t)``.
    """
    params = hybrid_parameters(n, t, b)
    x = (params.t_ab - 1) // (b - 2)
    x_prime = params.t_bc // (b - 1)
    return t + 2 * x + x_prime + (params.t_ab + params.t_bc - params.t_ac) + 4


def hybrid_rounds_asymptotic(t: int, b: int) -> float:
    """The paper's headline asymptotic: ``t + t/(b − 2) + 2(b − 1) + O(√t)``
    evaluated without the hidden constant (used only for shape comparisons)."""
    return t + t / max(1, b - 2) + 2 * (b - 1) + math.sqrt(max(0, t))


def hybrid_schedule(params: HybridParameters) -> ShiftSchedule:
    """The A→B portion of the hybrid as a single :class:`ShiftSchedule`."""
    segments = tuple(
        [Segment(rounds, "resolve_prime", conversion_discovery=True)
         for rounds in params.a_blocks]
        + [Segment(rounds, "resolve", conversion_discovery=False)
           for rounds in params.b_blocks])
    return ShiftSchedule(segments)


class HybridProcessor(AgreementProtocol):
    """One processor's execution of the hybrid algorithm."""

    def __init__(self, pid: ProcessorId, config: ProtocolConfig, b: int) -> None:
        super().__init__(pid, config)
        self.params = hybrid_parameters(config.n, config.t, b)
        self._phase_ab = ShiftingEIGProcessor(
            pid, config, hybrid_schedule(self.params), decide_at_end=False)
        self._phase_c: Optional[AlgorithmCProcessor] = None

    # -- phase management -----------------------------------------------------------
    @property
    def total_rounds(self) -> int:
        return self.params.total_rounds

    @property
    def _ab_rounds(self) -> int:
        return self.params.k_ab + self.params.k_bc

    def _c_local_round(self, round_number: int) -> int:
        """Translate a global round in the C phase to Algorithm C's numbering
        (the first C-phase round is Algorithm C's round 2)."""
        return round_number - self._ab_rounds + 1

    def _ensure_phase_c(self) -> AlgorithmCProcessor:
        if self._phase_c is None:
            self._phase_c = AlgorithmCProcessor(
                self.pid, self.config,
                first_round=2,
                last_round=self.params.c_rounds + 1,
                initial_root=self._phase_ab.preferred_value(),
                tracker=self._phase_ab.tracker)
        return self._phase_c

    # -- AgreementProtocol API ------------------------------------------------------
    def outgoing(self, round_number: int) -> Outbox:
        self._check_round(round_number)
        if round_number <= self._ab_rounds:
            return self._phase_ab.outgoing(round_number)
        local = self._c_local_round(round_number)
        return self._ensure_phase_c().outgoing(local)

    def incoming(self, round_number: int, inbox: Inbox) -> None:
        if round_number <= self._ab_rounds:
            self._phase_ab.incoming(round_number, inbox)
            if round_number == 1 and self.pid == self.config.source:
                self._decide(self.config.initial_value)
            return
        local = self._c_local_round(round_number)
        phase_c = self._ensure_phase_c()
        phase_c.incoming(local, inbox)
        if round_number == self.total_rounds and self.pid != self.config.source:
            self._decide(phase_c.decision())

    # -- introspection ------------------------------------------------------------------
    def preferred_value(self) -> Value:
        if self._phase_c is not None:
            return self._phase_c.preferred_value()
        return self._phase_ab.preferred_value()

    def discovered_faults(self):
        if self._phase_c is not None:
            return self._phase_c.discovered_faults()
        return self._phase_ab.discovered_faults()

    def computation_units(self) -> int:
        units = self._phase_ab.computation_units()
        if self._phase_c is not None:
            units += self._phase_c.computation_units()
        return units

    def phase_of_round(self, round_number: int) -> str:
        """Which algorithm the hybrid is executing at a global round ("A", "B" or "C")."""
        if round_number <= self.params.k_ab:
            return "A"
        if round_number <= self._ab_rounds:
            return "B"
        return "C"

    @property
    def discovery_log(self):
        log = dict(self._phase_ab.discovery_log)
        if self._phase_c is not None:
            offset = self._ab_rounds - 1
            for local_round, count in self._phase_c.discovery_log.items():
                log[local_round + offset] = count
        return log


class HybridSpec(ProtocolSpec):
    """Protocol spec for the hybrid algorithm with block parameter *b*."""

    def __init__(self, b: int) -> None:
        self.b = b
        self.name = f"hybrid(b={b})"

    def validate(self, config: ProtocolConfig) -> None:
        hybrid_parameters(config.n, config.t, self.b)

    def total_rounds(self, config: ProtocolConfig) -> int:
        return hybrid_rounds(config.n, config.t, self.b)

    def build(self, pid: ProcessorId, config: ProtocolConfig) -> AgreementProtocol:
        self.validate(config)
        return HybridProcessor(pid, config, self.b)

    def describe(self) -> str:
        return f"{self.name}: A→B→C, t + O(t/b) + O(√t) rounds, O(n^b) bits"
