"""EIG engine selection: the flat-array fast engine vs the dict reference.

The package ships two interchangeable implementations of the Exponential
Information Gathering substrate:

* ``"fast"`` — interned label sequences (dense integer node-ids), flat
  level-major value buffers, a single bottom-up conversion pass with inlined
  majority counting, and by-reference level-slice messages.  This is the
  default engine; it exists purely for speed.
* ``"reference"`` — the original ``Dict[LabelSequence, Value]`` trees with the
  recursive-specification conversion functions.  It is kept verbatim as the
  executable specification: property tests assert that both engines produce
  identical decisions, discoveries and conversions, and the perf benchmarks
  use it as the before/after baseline.

The engine is chosen per processor at construction time.  The default can be
set process-wide (:func:`set_default_engine`), temporarily
(:func:`use_engine`), or via the ``REPRO_EIG_ENGINE`` environment variable —
the latter is how the parallel experiment runner propagates the choice to its
worker processes.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

FAST = "fast"
REFERENCE = "reference"

ENGINES = (FAST, REFERENCE)

_ENV_VAR = "REPRO_EIG_ENGINE"

_default_engine = os.environ.get(_ENV_VAR, FAST)
if _default_engine not in ENGINES:  # pragma: no cover - env misconfiguration
    _default_engine = FAST


def get_default_engine() -> str:
    """The engine used by processors that do not request one explicitly."""
    return _default_engine


def set_default_engine(engine: str) -> None:
    """Set the process-wide default engine (``"fast"`` or ``"reference"``)."""
    global _default_engine
    _default_engine = validate_engine(engine)


def validate_engine(engine: Optional[str]) -> str:
    """Normalise an engine name, substituting the default for ``None``."""
    if engine is None:
        return _default_engine
    if engine not in ENGINES:
        raise ValueError(f"unknown EIG engine {engine!r}; expected one of {ENGINES}")
    return engine


@contextmanager
def use_engine(engine: str) -> Iterator[str]:
    """Temporarily switch the default engine (used by benchmarks and tests)."""
    global _default_engine
    previous = _default_engine
    _default_engine = validate_engine(engine)
    try:
        yield _default_engine
    finally:
        _default_engine = previous
