"""EIG engine selection: flat-array fast, vectorized numpy, and dict reference.

The package ships three interchangeable implementations of the Exponential
Information Gathering substrate:

* ``"fast"`` — interned label sequences (dense integer node-ids), flat
  level-major value buffers, a single bottom-up conversion pass with inlined
  majority counting, and by-reference level-slice messages.  This is the
  default engine; it has no dependencies and exists purely for speed.
* ``"numpy"`` — the same flat layout with the level buffers stored as
  small-integer ndarrays: gathering is fancy-indexed assignment over the
  interned ``(slots, parents)`` tables, and ``resolve`` / ``resolve'`` / the
  Fault Discovery Rule are one vectorized ``bincount`` majority vote per level
  over a ``(parents, branch)`` reshape.  **Optional**: it registers only when
  numpy is importable (:func:`numpy_available`); selecting it without numpy
  raises, and an environment request for it degrades to ``"fast"`` with a
  warning.
* ``"reference"`` — the original ``Dict[LabelSequence, Value]`` trees with the
  recursive-specification conversion functions.  It is kept verbatim as the
  executable specification: property tests assert that all engines produce
  identical decisions, discoveries and conversions, and the perf benchmarks
  use it as the before/after baseline.

The engine is chosen per processor at construction time.  The default can be
set process-wide (:func:`set_default_engine`), temporarily
(:func:`use_engine`), or via the ``REPRO_EIG_ENGINE`` environment variable —
the latter is how the parallel experiment runner propagates the choice to its
worker processes.  An invalid environment value is **not** silently accepted:
it falls back to ``"fast"`` and emits a :class:`RuntimeWarning` naming both
the bad value and the fallback.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

FAST = "fast"
NUMPY = "numpy"
REFERENCE = "reference"

ENGINES = (FAST, NUMPY, REFERENCE)

#: The batched whole-run executor (``run_agreement(..., batched=True)``,
#: ``repro run --batched``).  Not a per-processor engine — it replaces the
#: per-processor stepping loop itself with 2-D kernels over all correct
#: processors — but benchmarks and the CLI select it alongside the engines,
#: so it is named here.  It runs on the ``"numpy"`` storage layer and is
#: available exactly when that engine is (see :func:`batched_available`);
#: per-run eligibility (EIG specs only) is decided by
#: :func:`repro.runtime.batched.batched_supported`.
BATCHED = "batched"

_ENV_VAR = "REPRO_EIG_ENGINE"


def numpy_available() -> bool:
    """Whether the ``"numpy"`` engine is registered (numpy importable)."""
    from .npsupport import have_numpy
    return have_numpy()


def batched_available() -> bool:
    """Whether the batched whole-run executor can run (numpy importable)."""
    return numpy_available()


def available_engines() -> Tuple[str, ...]:
    """The engines that can actually be selected in this process."""
    if numpy_available():
        return ENGINES
    return (FAST, REFERENCE)


def _engine_from_environment() -> str:
    """Resolve the process default from ``REPRO_EIG_ENGINE`` (warn, never raise)."""
    requested = os.environ.get(_ENV_VAR)
    if requested is None or requested == FAST:
        return FAST
    if requested not in ENGINES:
        warnings.warn(
            f"ignoring invalid {_ENV_VAR}={requested!r} (expected one of "
            f"{ENGINES}); falling back to the {FAST!r} engine",
            RuntimeWarning, stacklevel=3)
        return FAST
    if requested == NUMPY and not numpy_available():
        warnings.warn(
            f"{_ENV_VAR}={NUMPY!r} requested but numpy is not installed; "
            f"falling back to the {FAST!r} engine",
            RuntimeWarning, stacklevel=3)
        return FAST
    return requested


_default_engine = _engine_from_environment()


def get_default_engine() -> str:
    """The engine used by processors that do not request one explicitly."""
    return _default_engine


def ambient_engine() -> Optional[str]:
    """The engine the *environment* asked for, or ``None`` when unconstrained.

    "Ambient" means a choice made outside the individual run request: the
    ``REPRO_EIG_ENGINE`` environment variable, or a process-wide
    :func:`set_default_engine` call that moved the default off ``"fast"``.
    The execution planner (:mod:`repro.api.planner`) lets its ``"auto"``
    resolution defer to an ambient choice, while an **explicit** engine on a
    request overrides it with a warning — the request is the more specific
    instruction.

    A ``set_default_engine("fast")`` call is indistinguishable from the
    built-in default and therefore reads as unconstrained; select ``"fast"``
    per request (or via the environment variable) when it must win.
    """
    requested = os.environ.get(_ENV_VAR)
    if requested in ENGINES and not (requested == NUMPY
                                     and not numpy_available()):
        return requested
    # An invalid or unusable environment request falls through to the
    # process default, which may itself carry an explicit pin.
    if _default_engine != FAST:
        return _default_engine
    return None


def set_default_engine(engine: str) -> None:
    """Set the process-wide default engine (one of :data:`ENGINES`)."""
    global _default_engine
    _default_engine = validate_engine(engine)


def validate_engine(engine: Optional[str]) -> str:
    """Normalise an engine name, substituting the default for ``None``.

    Raises :class:`ValueError` for unknown names and for ``"numpy"`` when
    numpy is not installed (the engine stays strictly optional).
    """
    if engine is None:
        return _default_engine
    if engine not in ENGINES:
        raise ValueError(f"unknown EIG engine {engine!r}; expected one of {ENGINES}")
    if engine == NUMPY and not numpy_available():
        raise ValueError(
            f"EIG engine {NUMPY!r} requires numpy, which is not installed; "
            f"available engines: {available_engines()}")
    return engine


@contextmanager
def use_engine(engine: str) -> Iterator[str]:
    """Temporarily switch the default engine (used by benchmarks and tests)."""
    global _default_engine
    previous = _default_engine
    _default_engine = validate_engine(engine)
    try:
        yield _default_engine
    finally:
        _default_engine = previous
