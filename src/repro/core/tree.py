"""Information Gathering Trees — the principal data structure of the paper.

Two flavours are provided:

* :class:`InfoGatheringTree` — the tree *without repetitions* used by the
  Exponential Algorithm and by Algorithms A and B.  A node is identified by
  the sequence of labels on its root-to-node path; the root is ``(s,)`` and
  the children of a node ``α`` are labelled by every processor not in ``α``.
* :class:`RepetitionTree` — the tree *with repetitions* used by Algorithm C:
  every internal node has exactly ``n`` children, one per processor, and the
  tree never grows beyond three levels because ``shift_{3→2}`` collapses it at
  every round.

Both classes store values per *level* (level ℓ = sequences of length ℓ) which
makes the round structure of the protocols explicit: the messages received in
round ``h + 1`` populate level ``h + 1``, the leaves of the round-``h`` tree
are exactly level ``h``, and a shift truncates the tree back to its first
level.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .sequences import (LabelSequence, ProcessorId, SequenceIndex,
                        child_labels, sequence_index)
from .values import DEFAULT_VALUE, Value
from ..runtime.metrics import ComputationMeter

#: Sentinel marking an absent node in a flat level buffer.  Never visible
#: through the public API: reads substitute the caller's default, exactly as
#: a missing dictionary key does in the reference trees.
MISSING = object()


class InfoGatheringTree:
    """Information Gathering Tree without repetitions.

    Parameters
    ----------
    source:
        Identifier of the distinguished source processor ``s``.
    processors:
        All processor identifiers (including the source).
    meter:
        Optional :class:`ComputationMeter` charged one unit per store and per
        read performed through the public API, so the local-computation
        bounds of the theorems can be checked as growth shapes.
    """

    allow_repetitions = False

    def __init__(self, source: ProcessorId,
                 processors: Sequence[ProcessorId],
                 meter: Optional[ComputationMeter] = None) -> None:
        self.source = source
        self.processors: Tuple[ProcessorId, ...] = tuple(processors)
        if source not in self.processors:
            raise ValueError("the source must be one of the processors")
        self.n = len(self.processors)
        self._meter = meter if meter is not None else ComputationMeter()
        #: level index (1-based) -> {sequence: value}
        self._levels: Dict[int, Dict[LabelSequence, Value]] = {}

    # -- basic structure ---------------------------------------------------
    @property
    def meter(self) -> ComputationMeter:
        return self._meter

    @property
    def root(self) -> LabelSequence:
        return (self.source,)

    @property
    def num_levels(self) -> int:
        """Number of populated levels (0 for an empty tree)."""
        return max(self._levels, default=0)

    @property
    def height(self) -> int:
        """Height as defined by the paper (−1 for an empty tree, 0 for a root-only tree)."""
        return self.num_levels - 1

    def child_labels(self, seq: LabelSequence) -> List[ProcessorId]:
        """Labels of the children of node *seq* (processors not on the path)."""
        return child_labels(seq, self.processors, self.allow_repetitions)

    def is_leaf(self, seq: LabelSequence) -> bool:
        """A node is a leaf iff it sits on the deepest populated level."""
        return len(seq) >= self.num_levels

    # -- storage -----------------------------------------------------------
    def store(self, seq: Sequence[ProcessorId], value: Value) -> None:
        """Store *value* at node *seq*, creating the node's level if needed."""
        seq = tuple(seq)
        level = len(seq)
        self._levels.setdefault(level, {})[seq] = value
        self._meter.charge()

    def value(self, seq: Sequence[ProcessorId],
              default: Value = DEFAULT_VALUE) -> Value:
        """The value stored at node *seq* (default if the node is absent)."""
        seq = tuple(seq)
        self._meter.charge()
        return self._levels.get(len(seq), {}).get(seq, default)

    def has(self, seq: Sequence[ProcessorId]) -> bool:
        seq = tuple(seq)
        return seq in self._levels.get(len(seq), {})

    def peek(self, seq: Sequence[ProcessorId]) -> Value:
        """Meter-free read of node *seq* (:data:`MISSING` when absent).

        Adversarial state inspection, not protocol computation — the
        transient-corruption fault model reads and overwrites stored state
        without charging the victim's computation meter (see
        :mod:`repro.runtime.corruption`).
        """
        seq = tuple(seq)
        return self._levels.get(len(seq), {}).get(seq, MISSING)

    def poke(self, seq: Sequence[ProcessorId], value: Value) -> None:
        """Meter-free adversarial overwrite of an already-stored node."""
        seq = tuple(seq)
        level = self._levels.get(len(seq))
        if level is None or seq not in level:
            raise KeyError(seq)
        level[seq] = value

    def set_root(self, value: Value) -> None:
        """Store *value* at the root (level 1)."""
        self.store(self.root, value)

    def root_value(self, default: Value = DEFAULT_VALUE) -> Value:
        """The *preferred value* of the owning processor (value at the root)."""
        return self.value(self.root, default)

    # -- level access --------------------------------------------------------
    def level(self, index: int) -> Dict[LabelSequence, Value]:
        """A copy of the mapping {sequence: value} for level *index*."""
        return dict(self._levels.get(index, {}))

    def level_sequences(self, index: int) -> List[LabelSequence]:
        return list(self._levels.get(index, {}).keys())

    def leaves(self) -> Dict[LabelSequence, Value]:
        """The deepest populated level (empty dict for an empty tree)."""
        if not self._levels:
            return {}
        return dict(self._levels[self.num_levels])

    def level_size(self, index: int) -> int:
        return len(self._levels.get(index, {}))

    def node_count(self) -> int:
        return sum(len(level) for level in self._levels.values())

    def sequences(self) -> Iterator[LabelSequence]:
        for index in sorted(self._levels):
            yield from self._levels[index].keys()

    # -- growing the tree ----------------------------------------------------
    def expected_parents(self, level: int) -> List[LabelSequence]:
        """The sequences that must exist at ``level − 1`` before level *level*
        can be populated (i.e. the internal nodes whose children are stored)."""
        if level <= 1:
            return []
        return self.level_sequences(level - 1)

    def grow_level(self, level: int,
                   claimed_value) -> None:
        """Populate level *level* from a claim function.

        ``claimed_value(parent_seq, child_label)`` must return the value to be
        stored at ``parent_seq + (child_label,)``.  The claim function is where
        the protocol consults received messages (and applies masking and the
        default-value substitution); the tree itself is policy-free.
        """
        if level != self.num_levels + 1:
            raise ValueError(
                f"cannot grow level {level}: tree currently has "
                f"{self.num_levels} level(s)")
        new_level: Dict[LabelSequence, Value] = {}
        for parent in self.level_sequences(level - 1):
            for child in self.child_labels(parent):
                seq = parent + (child,)
                new_level[seq] = claimed_value(parent, child)
                self._meter.charge()
        self._levels[level] = new_level

    # -- shifting --------------------------------------------------------------
    def truncate_to_level(self, level: int) -> None:
        """Drop every level strictly deeper than *level* (part of a shift)."""
        for index in [idx for idx in self._levels if idx > level]:
            del self._levels[index]

    def reset_to_root(self, value: Value) -> None:
        """``shift_{k→1}``: collapse the whole tree to a root holding *value*."""
        self._levels = {1: {self.root: value}}
        self._meter.charge()

    def overwrite_level(self, index: int,
                        values: Dict[LabelSequence, Value]) -> None:
        """Replace the value mapping of an existing level (used by Algorithm C's
        conversion, which rewrites level 2 in place)."""
        self._levels[index] = dict(values)
        self._meter.charge(len(values))

    # -- misc -------------------------------------------------------------------
    def copy(self) -> "InfoGatheringTree":
        """A deep copy sharing no state with the original (meter excluded)."""
        clone = type(self)(self.source, self.processors)
        clone._levels = {index: dict(level)
                         for index, level in self._levels.items()}
        return clone

    def __repr__(self) -> str:
        sizes = [self.level_size(i) for i in range(1, self.num_levels + 1)]
        return (f"{type(self).__name__}(n={self.n}, levels={sizes})")


class RepetitionTree(InfoGatheringTree):
    """Information Gathering Tree *with repetitions* (Algorithm C).

    Every internal node has exactly ``n`` children, one per processor name
    (names may repeat along a path, and the source reappears as a child).
    Algorithm C keeps the tree at no more than three levels.
    """

    allow_repetitions = True

    def reorder_leaves(self) -> None:
        """Swap ``tree(spq)`` and ``tree(sqp)`` for every pair ``p ≠ q``.

        After the reordering, the subtree rooted at ``sq`` contains exactly
        the values received *from* ``q`` in the current round (``q``'s report
        of every processor's level-2 value), which is what Algorithm C's
        conversion votes over.
        """
        if self.num_levels < 3:
            raise ValueError("reordering requires a populated third level")
        level3 = self._levels[3]
        reordered: Dict[LabelSequence, Value] = {}
        for seq, value in level3.items():
            s, p, q = seq
            reordered[(s, q, p)] = value
            self._meter.charge()
        self._levels[3] = reordered

    def convert_intermediate(self, resolver) -> None:
        """``shift_{3→2}``: set ``tree(sq) = resolver(sq)`` for every q, drop level 3.

        *resolver* is called with each intermediate sequence ``(s, q)`` and
        must return its converted value (normally ``resolve`` over the current
        three-level tree).
        """
        if self.num_levels < 3:
            raise ValueError("conversion requires a populated third level")
        new_level2 = {seq: resolver(seq) for seq in self.level_sequences(2)}
        self.overwrite_level(2, new_level2)
        self.truncate_to_level(2)


class FlatEIGTree(InfoGatheringTree):
    """Information Gathering Tree stored as flat level-major buffers.

    Drop-in replacement for :class:`InfoGatheringTree` (same public API, same
    deterministic shape, same meter accounting) backed by the fast engine's
    data layout: one Python list per level, indexed by the dense node-ids of
    the shared :class:`~repro.core.sequences.SequenceIndex`.  No dictionary
    keyed by label-sequence tuples exists on any hot path; the dict-returning
    accessors (:meth:`level`, :meth:`leaves`) materialise views on demand and
    are intended for tests, reporting, and the reference engine only.

    The flat buffers are exposed by reference through :meth:`raw_level` so
    that messages can wrap a level slice without copying.  The aliasing
    discipline is: a level buffer may be mutated only during the
    ``incoming()`` call that created it (gathering + masking); every later
    rewrite (conversion, reordering, reset) installs a **new** list, so a
    buffer captured by an outgoing message is immutable from the moment it is
    sent.
    """

    def __init__(self, source: ProcessorId,
                 processors: Sequence[ProcessorId],
                 meter: Optional[ComputationMeter] = None) -> None:
        super().__init__(source, processors, meter)
        self._index: SequenceIndex = sequence_index(
            source, self.processors, self.allow_repetitions)
        #: level ℓ values live in _flat[ℓ - 1]; absent nodes hold MISSING
        self._flat: List[List[Value]] = []
        #: number of non-MISSING nodes per level (kept exact for level_size)
        self._stored: List[int] = []

    # -- engine interface -----------------------------------------------------
    @property
    def index(self) -> SequenceIndex:
        return self._index

    def raw_level(self, level: int) -> List[Value]:
        """The flat value buffer of *level*, by reference (no meter charge)."""
        return self._flat[level - 1]

    def level_message(self, level: int, sender: ProcessorId,
                      round_number: int):
        """Wrap *level* in a by-reference broadcast message.

        One message object is shared by every destination and the buffer is
        never copied; the aliasing discipline of this class guarantees the
        wrapped buffer is immutable from the moment it is exposed.
        """
        from ..runtime.messages import LevelMessage
        return LevelMessage(self._index, level, self._flat[level - 1],
                            sender, round_number)

    def append_level(self, values: List[Value]) -> None:
        """Install *values* as the next level (fast-path sibling of
        :meth:`grow_level`; charges one unit per stored node)."""
        level = len(self._flat) + 1
        expected = self._index.level_size(level)
        if len(values) != expected:
            raise ValueError(
                f"level {level} of this tree shape has {expected} nodes, "
                f"got {len(values)} values")
        self._flat.append(values)
        self._stored.append(len(values))
        self._meter.charge(len(values))

    def replace_level(self, level: int, values: List[Value]) -> None:
        """Replace the buffer of an existing *level* (fast-path sibling of
        :meth:`overwrite_level`; installs the new list by reference)."""
        if not 1 <= level <= len(self._flat):
            raise ValueError(f"level {level} is not populated")
        if len(values) != self._index.level_size(level):
            raise ValueError("replacement buffer has the wrong size")
        self._flat[level - 1] = values
        self._stored[level - 1] = len(values)
        self._meter.charge(len(values))

    def _ensure_levels(self, level: int) -> None:
        while len(self._flat) < level:
            new_level = len(self._flat) + 1
            self._flat.append([MISSING] * self._index.level_size(new_level))
            self._stored.append(0)

    # -- basic structure -------------------------------------------------------
    @property
    def num_levels(self) -> int:
        return len(self._flat)

    # -- storage ---------------------------------------------------------------
    def store(self, seq: Sequence[ProcessorId], value: Value) -> None:
        seq = tuple(seq)
        level = len(seq)
        node_id = self._index.node_id(seq)
        self._ensure_levels(level)
        buffer = self._flat[level - 1]
        if buffer[node_id] is MISSING:
            self._stored[level - 1] += 1
        buffer[node_id] = value
        self._meter.charge()

    def value(self, seq: Sequence[ProcessorId],
              default: Value = DEFAULT_VALUE) -> Value:
        seq = tuple(seq)
        self._meter.charge()
        level = len(seq)
        if not 1 <= level <= len(self._flat):
            return default
        node_id = self._index.id_map(level).get(seq)
        if node_id is None:
            return default
        stored = self._flat[level - 1][node_id]
        return default if stored is MISSING else stored

    def has(self, seq: Sequence[ProcessorId]) -> bool:
        seq = tuple(seq)
        level = len(seq)
        if not 1 <= level <= len(self._flat):
            return False
        node_id = self._index.id_map(level).get(seq)
        return node_id is not None and self._flat[level - 1][node_id] is not MISSING

    def peek(self, seq: Sequence[ProcessorId]) -> Value:
        seq = tuple(seq)
        level = len(seq)
        if not 1 <= level <= len(self._flat):
            return MISSING
        node_id = self._index.id_map(level).get(seq)
        if node_id is None:
            return MISSING
        return self._flat[level - 1][node_id]

    def poke(self, seq: Sequence[ProcessorId], value: Value) -> None:
        seq = tuple(seq)
        if self.peek(seq) is MISSING:
            raise KeyError(seq)
        self._flat[len(seq) - 1][self._index.node_id(seq)] = value

    # -- level access ----------------------------------------------------------
    def level(self, index: int) -> Dict[LabelSequence, Value]:
        if not 1 <= index <= len(self._flat):
            return {}
        sequences = self._index.sequences(index)
        return {seq: value
                for seq, value in zip(sequences, self._flat[index - 1])
                if value is not MISSING}

    def level_sequences(self, index: int) -> List[LabelSequence]:
        if not 1 <= index <= len(self._flat):
            return []
        buffer = self._flat[index - 1]
        if self._stored[index - 1] == len(buffer):
            return list(self._index.sequences(index))
        return [seq for seq, value in zip(self._index.sequences(index), buffer)
                if value is not MISSING]

    def leaves(self) -> Dict[LabelSequence, Value]:
        if not self._flat:
            return {}
        return self.level(len(self._flat))

    def level_size(self, index: int) -> int:
        if not 1 <= index <= len(self._flat):
            return 0
        return self._stored[index - 1]

    def node_count(self) -> int:
        return sum(self._stored)

    def sequences(self) -> Iterator[LabelSequence]:
        for index in range(1, len(self._flat) + 1):
            yield from self.level_sequences(index)

    # -- growing the tree ------------------------------------------------------
    def grow_level(self, level: int, claimed_value) -> None:
        if level != self.num_levels + 1:
            raise ValueError(
                f"cannot grow level {level}: tree currently has "
                f"{self.num_levels} level(s)")
        index = self._index
        size = index.level_size(level)
        buffer: List[Value] = [MISSING] * size
        stored = 0
        if level > 1:
            branch = index.branch(level - 1)
            labels = index.last_labels(level)
            parent_buffer = self._flat[level - 2]
            for parent_id, parent in enumerate(index.sequences(level - 1)):
                if parent_buffer[parent_id] is MISSING:
                    continue
                base = parent_id * branch
                for offset in range(branch):
                    slot = base + offset
                    buffer[slot] = claimed_value(parent, labels[slot])
                    stored += 1
        self._flat.append(buffer)
        self._stored.append(stored)
        self._meter.charge(stored)

    # -- shifting ----------------------------------------------------------------
    def truncate_to_level(self, level: int) -> None:
        if level < len(self._flat):
            del self._flat[level:]
            del self._stored[level:]

    def reset_to_root(self, value: Value) -> None:
        self._flat = [[value]]
        self._stored = [1]
        self._meter.charge()

    def overwrite_level(self, index: int,
                        values: Dict[LabelSequence, Value]) -> None:
        if not 1 <= index <= len(self._flat):
            raise KeyError(index)
        id_map = self._index.id_map(index)
        buffer: List[Value] = [MISSING] * self._index.level_size(index)
        for seq, value in values.items():
            buffer[id_map[tuple(seq)]] = value
        self._flat[index - 1] = buffer
        self._stored[index - 1] = len(values)
        self._meter.charge(len(values))

    # -- misc ----------------------------------------------------------------------
    def copy(self) -> "FlatEIGTree":
        clone = type(self)(self.source, self.processors)
        clone._flat = [list(buffer) for buffer in self._flat]
        clone._stored = list(self._stored)
        return clone


class FlatRepetitionTree(FlatEIGTree):
    """Flat-buffer counterpart of :class:`RepetitionTree` (Algorithm C)."""

    allow_repetitions = True

    def reorder_leaves(self) -> None:
        """Swap ``tree(spq)`` and ``tree(sqp)`` for every pair ``p ≠ q``.

        With the parent-major layout the level-3 buffer is an ``n × n``
        matrix (row = intermediate vertex, column = reporting child), so the
        reordering is a transpose.
        """
        if self.num_levels < 3:
            raise ValueError("reordering requires a populated third level")
        n = self.n
        old = self._flat[2]
        self._flat[2] = [old[(i % n) * n + i // n] for i in range(n * n)]
        self._meter.charge(n * n)

    def convert_intermediate(self, resolver) -> None:
        """``shift_{3→2}`` — see :meth:`RepetitionTree.convert_intermediate`."""
        if self.num_levels < 3:
            raise ValueError("conversion requires a populated third level")
        new_level2 = {seq: resolver(seq) for seq in self.level_sequences(2)}
        self.overwrite_level(2, new_level2)
        self.truncate_to_level(2)


class NumpyEIGTree(FlatEIGTree):
    """Information Gathering Tree stored as small-int code ndarrays.

    The ``"numpy"`` engine's storage mode: same level-major layout, node-ids
    and aliasing discipline as :class:`FlatEIGTree`, but each level buffer is
    an ``int32`` ndarray of codes of the process-wide
    :data:`~repro.core.npsupport.VALUE_CODEC` (``MISSING_CODE`` marks absent
    nodes).  On top of the array buffers, gathering becomes fancy-indexed
    assignment and the conversion/discovery rules become per-level
    ``bincount`` majority votes — see :func:`repro.core.resolve.numpy_resolve_levels`
    and :func:`repro.core.fault_discovery.discover_at_level_numpy`.  The
    dict-shaped accessors decode on demand for tests and reporting, and the
    meter accounting is identical to both other engines by construction.
    """

    def __init__(self, source: ProcessorId,
                 processors: Sequence[ProcessorId],
                 meter: Optional[ComputationMeter] = None) -> None:
        super().__init__(source, processors, meter)
        from .npsupport import (BOTTOM_CODE, CODE_DTYPE_NAME, DEFAULT_CODE,
                                MISSING_CODE, VALUE_CODEC, require_numpy)
        self._np = require_numpy()
        self._codec = VALUE_CODEC
        self._dtype = CODE_DTYPE_NAME
        self._missing_code = MISSING_CODE
        self._default_code = DEFAULT_CODE
        self._bottom_code = BOTTOM_CODE

    # -- engine interface -----------------------------------------------------
    def level_message(self, level: int, sender: ProcessorId,
                      round_number: int):
        from ..runtime.messages import NumpyLevelMessage
        return NumpyLevelMessage(self._index, level, self._flat[level - 1],
                                 sender, round_number)

    def _empty_level(self, level: int):
        return self._np.full(self._index.level_size(level),
                             self._missing_code, dtype=self._dtype)

    def _ensure_levels(self, level: int) -> None:
        while len(self._flat) < level:
            self._flat.append(self._empty_level(len(self._flat) + 1))
            self._stored.append(0)

    # -- storage ---------------------------------------------------------------
    def store(self, seq: Sequence[ProcessorId], value: Value) -> None:
        seq = tuple(seq)
        level = len(seq)
        node_id = self._index.node_id(seq)
        self._ensure_levels(level)
        buffer = self._flat[level - 1]
        if buffer[node_id] == self._missing_code:
            self._stored[level - 1] += 1
        buffer[node_id] = self._codec.code(value)
        self._meter.charge()

    def value(self, seq: Sequence[ProcessorId],
              default: Value = DEFAULT_VALUE) -> Value:
        seq = tuple(seq)
        self._meter.charge()
        level = len(seq)
        if not 1 <= level <= len(self._flat):
            return default
        node_id = self._index.id_map(level).get(seq)
        if node_id is None:
            return default
        code = int(self._flat[level - 1][node_id])
        return default if code == self._missing_code else self._codec.value(code)

    def has(self, seq: Sequence[ProcessorId]) -> bool:
        seq = tuple(seq)
        level = len(seq)
        if not 1 <= level <= len(self._flat):
            return False
        node_id = self._index.id_map(level).get(seq)
        return (node_id is not None
                and self._flat[level - 1][node_id] != self._missing_code)

    def peek(self, seq: Sequence[ProcessorId]) -> Value:
        seq = tuple(seq)
        level = len(seq)
        if not 1 <= level <= len(self._flat):
            return MISSING
        node_id = self._index.id_map(level).get(seq)
        if node_id is None:
            return MISSING
        code = int(self._flat[level - 1][node_id])
        return MISSING if code == self._missing_code else self._codec.value(code)

    def poke(self, seq: Sequence[ProcessorId], value: Value) -> None:
        seq = tuple(seq)
        if self.peek(seq) is MISSING:
            raise KeyError(seq)
        node_id = self._index.node_id(seq)
        self._flat[len(seq) - 1][node_id] = self._codec.code(value)

    # -- level access ----------------------------------------------------------
    def _decoded_level(self, index: int) -> List[Value]:
        """Level *index* decoded to values, ``MISSING`` marking absent nodes."""
        return self._codec.decode_buffer(self._flat[index - 1], missing=MISSING)

    def level(self, index: int) -> Dict[LabelSequence, Value]:
        if not 1 <= index <= len(self._flat):
            return {}
        sequences = self._index.sequences(index)
        return {seq: value
                for seq, value in zip(sequences, self._decoded_level(index))
                if value is not MISSING}

    def level_sequences(self, index: int) -> List[LabelSequence]:
        if not 1 <= index <= len(self._flat):
            return []
        buffer = self._flat[index - 1]
        sequences = self._index.sequences(index)
        if self._stored[index - 1] == len(buffer):
            return list(sequences)
        present = (buffer != self._missing_code).tolist()
        return [seq for seq, keep in zip(sequences, present) if keep]

    # -- growing the tree ------------------------------------------------------
    def grow_level(self, level: int, claimed_value) -> None:
        """Generic (callback-driven) growth: encode through a scratch list.

        Hot paths use :func:`~repro.core.fault_masking.gather_level_numpy`
        instead; this slow path keeps the public tree API complete.
        """
        if level != self.num_levels + 1:
            raise ValueError(
                f"cannot grow level {level}: tree currently has "
                f"{self.num_levels} level(s)")
        index = self._index
        buffer = self._empty_level(level)
        stored = 0
        if level > 1:
            branch = index.branch(level - 1)
            labels = index.last_labels(level)
            parent_buffer = self._flat[level - 2]
            code_of = self._codec.code
            for parent_id, parent in enumerate(index.sequences(level - 1)):
                if parent_buffer[parent_id] == self._missing_code:
                    continue
                base = parent_id * branch
                for offset in range(branch):
                    slot = base + offset
                    buffer[slot] = code_of(claimed_value(parent, labels[slot]))
                    stored += 1
        self._flat.append(buffer)
        self._stored.append(stored)
        self._meter.charge(stored)

    # -- shifting ----------------------------------------------------------------
    def reset_to_root(self, value: Value) -> None:
        self._flat = [self._np.asarray([self._codec.code(value)],
                                       dtype=self._dtype)]
        self._stored = [1]
        self._meter.charge()

    def overwrite_level(self, index: int,
                        values: Dict[LabelSequence, Value]) -> None:
        if not 1 <= index <= len(self._flat):
            raise KeyError(index)
        id_map = self._index.id_map(index)
        buffer = self._empty_level(index)
        code_of = self._codec.code
        for seq, value in values.items():
            buffer[id_map[tuple(seq)]] = code_of(value)
        self._flat[index - 1] = buffer
        self._stored[index - 1] = len(values)
        self._meter.charge(len(values))

    # -- misc ----------------------------------------------------------------------
    def copy(self) -> "NumpyEIGTree":
        clone = type(self)(self.source, self.processors)
        clone._flat = [buffer.copy() for buffer in self._flat]
        clone._stored = list(self._stored)
        return clone

    @classmethod
    def adopt_levels(cls, source: ProcessorId,
                     processors: Sequence[ProcessorId],
                     buffers: Sequence,
                     meter: Optional[ComputationMeter] = None) -> "NumpyEIGTree":
        """Build a tree around existing per-level code buffers, by reference.

        The bridge from a :class:`~repro.core.npsupport.BatchedEIGState` row
        back to a per-processor tree: *buffers* are adopted as the level
        buffers without copying and without meter charges (the batched
        executor accounts for stores itself), so the full per-processor
        accessor/kernel surface works against a batched execution's state.
        """
        tree = cls(source, processors, meter)
        for level, buffer in enumerate(buffers, start=1):
            expected = tree._index.level_size(level)
            if len(buffer) != expected:
                raise ValueError(
                    f"level {level} of this tree shape has {expected} nodes, "
                    f"got {len(buffer)} codes")
            tree._flat.append(buffer)
            tree._stored.append(int((buffer != tree._missing_code).sum()))
        return tree


class NumpyRepetitionTree(NumpyEIGTree):
    """ndarray-backed counterpart of :class:`RepetitionTree` (Algorithm C)."""

    allow_repetitions = True

    def reorder_leaves(self) -> None:
        """Swap ``tree(spq)`` and ``tree(sqp)``: a transpose of the ``n × n``
        level-3 code matrix (installs a fresh buffer, like every rewrite)."""
        if self.num_levels < 3:
            raise ValueError("reordering requires a populated third level")
        n = self.n
        self._flat[2] = self._np.ascontiguousarray(
            self._flat[2].reshape(n, n).T).reshape(-1)
        self._meter.charge(n * n)

    def convert_intermediate(self, resolver) -> None:
        """``shift_{3→2}`` — see :meth:`RepetitionTree.convert_intermediate`."""
        if self.num_levels < 3:
            raise ValueError("conversion requires a populated third level")
        new_level2 = {seq: resolver(seq) for seq in self.level_sequences(2)}
        self.overwrite_level(2, new_level2)
        self.truncate_to_level(2)


def make_tree(source: ProcessorId, processors: Sequence[ProcessorId],
              engine: str, repetitions: bool = False,
              meter: Optional[ComputationMeter] = None) -> InfoGatheringTree:
    """Build the tree flavour for an engine (``"fast"`` → flat list buffers,
    ``"numpy"`` → code ndarrays, anything else → the dict reference)."""
    if engine == "fast":
        cls = FlatRepetitionTree if repetitions else FlatEIGTree
    elif engine == "numpy":
        cls = NumpyRepetitionTree if repetitions else NumpyEIGTree
    else:
        cls = RepetitionTree if repetitions else InfoGatheringTree
    return cls(source, processors, meter)
