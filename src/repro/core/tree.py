"""Information Gathering Trees — the principal data structure of the paper.

Two flavours are provided:

* :class:`InfoGatheringTree` — the tree *without repetitions* used by the
  Exponential Algorithm and by Algorithms A and B.  A node is identified by
  the sequence of labels on its root-to-node path; the root is ``(s,)`` and
  the children of a node ``α`` are labelled by every processor not in ``α``.
* :class:`RepetitionTree` — the tree *with repetitions* used by Algorithm C:
  every internal node has exactly ``n`` children, one per processor, and the
  tree never grows beyond three levels because ``shift_{3→2}`` collapses it at
  every round.

Both classes store values per *level* (level ℓ = sequences of length ℓ) which
makes the round structure of the protocols explicit: the messages received in
round ``h + 1`` populate level ``h + 1``, the leaves of the round-``h`` tree
are exactly level ``h``, and a shift truncates the tree back to its first
level.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .sequences import LabelSequence, ProcessorId, child_labels
from .values import DEFAULT_VALUE, Value
from ..runtime.metrics import ComputationMeter


class InfoGatheringTree:
    """Information Gathering Tree without repetitions.

    Parameters
    ----------
    source:
        Identifier of the distinguished source processor ``s``.
    processors:
        All processor identifiers (including the source).
    meter:
        Optional :class:`ComputationMeter` charged one unit per store and per
        read performed through the public API, so the local-computation
        bounds of the theorems can be checked as growth shapes.
    """

    allow_repetitions = False

    def __init__(self, source: ProcessorId,
                 processors: Sequence[ProcessorId],
                 meter: Optional[ComputationMeter] = None) -> None:
        self.source = source
        self.processors: Tuple[ProcessorId, ...] = tuple(processors)
        if source not in self.processors:
            raise ValueError("the source must be one of the processors")
        self.n = len(self.processors)
        self._meter = meter if meter is not None else ComputationMeter()
        #: level index (1-based) -> {sequence: value}
        self._levels: Dict[int, Dict[LabelSequence, Value]] = {}

    # -- basic structure ---------------------------------------------------
    @property
    def meter(self) -> ComputationMeter:
        return self._meter

    @property
    def root(self) -> LabelSequence:
        return (self.source,)

    @property
    def num_levels(self) -> int:
        """Number of populated levels (0 for an empty tree)."""
        return max(self._levels, default=0)

    @property
    def height(self) -> int:
        """Height as defined by the paper (−1 for an empty tree, 0 for a root-only tree)."""
        return self.num_levels - 1

    def child_labels(self, seq: LabelSequence) -> List[ProcessorId]:
        """Labels of the children of node *seq* (processors not on the path)."""
        return child_labels(seq, self.processors, self.allow_repetitions)

    def is_leaf(self, seq: LabelSequence) -> bool:
        """A node is a leaf iff it sits on the deepest populated level."""
        return len(seq) >= self.num_levels

    # -- storage -----------------------------------------------------------
    def store(self, seq: Sequence[ProcessorId], value: Value) -> None:
        """Store *value* at node *seq*, creating the node's level if needed."""
        seq = tuple(seq)
        level = len(seq)
        self._levels.setdefault(level, {})[seq] = value
        self._meter.charge()

    def value(self, seq: Sequence[ProcessorId],
              default: Value = DEFAULT_VALUE) -> Value:
        """The value stored at node *seq* (default if the node is absent)."""
        seq = tuple(seq)
        self._meter.charge()
        return self._levels.get(len(seq), {}).get(seq, default)

    def has(self, seq: Sequence[ProcessorId]) -> bool:
        seq = tuple(seq)
        return seq in self._levels.get(len(seq), {})

    def set_root(self, value: Value) -> None:
        """Store *value* at the root (level 1)."""
        self.store(self.root, value)

    def root_value(self, default: Value = DEFAULT_VALUE) -> Value:
        """The *preferred value* of the owning processor (value at the root)."""
        return self.value(self.root, default)

    # -- level access --------------------------------------------------------
    def level(self, index: int) -> Dict[LabelSequence, Value]:
        """A copy of the mapping {sequence: value} for level *index*."""
        return dict(self._levels.get(index, {}))

    def level_sequences(self, index: int) -> List[LabelSequence]:
        return list(self._levels.get(index, {}).keys())

    def leaves(self) -> Dict[LabelSequence, Value]:
        """The deepest populated level (empty dict for an empty tree)."""
        if not self._levels:
            return {}
        return dict(self._levels[self.num_levels])

    def level_size(self, index: int) -> int:
        return len(self._levels.get(index, {}))

    def node_count(self) -> int:
        return sum(len(level) for level in self._levels.values())

    def sequences(self) -> Iterator[LabelSequence]:
        for index in sorted(self._levels):
            yield from self._levels[index].keys()

    # -- growing the tree ----------------------------------------------------
    def expected_parents(self, level: int) -> List[LabelSequence]:
        """The sequences that must exist at ``level − 1`` before level *level*
        can be populated (i.e. the internal nodes whose children are stored)."""
        if level <= 1:
            return []
        return self.level_sequences(level - 1)

    def grow_level(self, level: int,
                   claimed_value) -> None:
        """Populate level *level* from a claim function.

        ``claimed_value(parent_seq, child_label)`` must return the value to be
        stored at ``parent_seq + (child_label,)``.  The claim function is where
        the protocol consults received messages (and applies masking and the
        default-value substitution); the tree itself is policy-free.
        """
        if level != self.num_levels + 1:
            raise ValueError(
                f"cannot grow level {level}: tree currently has "
                f"{self.num_levels} level(s)")
        new_level: Dict[LabelSequence, Value] = {}
        for parent in self.level_sequences(level - 1):
            for child in self.child_labels(parent):
                seq = parent + (child,)
                new_level[seq] = claimed_value(parent, child)
                self._meter.charge()
        self._levels[level] = new_level

    # -- shifting --------------------------------------------------------------
    def truncate_to_level(self, level: int) -> None:
        """Drop every level strictly deeper than *level* (part of a shift)."""
        for index in [idx for idx in self._levels if idx > level]:
            del self._levels[index]

    def reset_to_root(self, value: Value) -> None:
        """``shift_{k→1}``: collapse the whole tree to a root holding *value*."""
        self._levels = {1: {self.root: value}}
        self._meter.charge()

    def overwrite_level(self, index: int,
                        values: Dict[LabelSequence, Value]) -> None:
        """Replace the value mapping of an existing level (used by Algorithm C's
        conversion, which rewrites level 2 in place)."""
        self._levels[index] = dict(values)
        self._meter.charge(len(values))

    # -- misc -------------------------------------------------------------------
    def copy(self) -> "InfoGatheringTree":
        """A deep copy sharing no state with the original (meter excluded)."""
        clone = type(self)(self.source, self.processors)
        clone._levels = {index: dict(level)
                         for index, level in self._levels.items()}
        return clone

    def __repr__(self) -> str:
        sizes = [self.level_size(i) for i in range(1, self.num_levels + 1)]
        return (f"{type(self).__name__}(n={self.n}, levels={sizes})")


class RepetitionTree(InfoGatheringTree):
    """Information Gathering Tree *with repetitions* (Algorithm C).

    Every internal node has exactly ``n`` children, one per processor name
    (names may repeat along a path, and the source reappears as a child).
    Algorithm C keeps the tree at no more than three levels.
    """

    allow_repetitions = True

    def reorder_leaves(self) -> None:
        """Swap ``tree(spq)`` and ``tree(sqp)`` for every pair ``p ≠ q``.

        After the reordering, the subtree rooted at ``sq`` contains exactly
        the values received *from* ``q`` in the current round (``q``'s report
        of every processor's level-2 value), which is what Algorithm C's
        conversion votes over.
        """
        if self.num_levels < 3:
            raise ValueError("reordering requires a populated third level")
        level3 = self._levels[3]
        reordered: Dict[LabelSequence, Value] = {}
        for seq, value in level3.items():
            s, p, q = seq
            reordered[(s, q, p)] = value
            self._meter.charge()
        self._levels[3] = reordered

    def convert_intermediate(self, resolver) -> None:
        """``shift_{3→2}``: set ``tree(sq) = resolver(sq)`` for every q, drop level 3.

        *resolver* is called with each intermediate sequence ``(s, q)`` and
        must return its converted value (normally ``resolve`` over the current
        three-level tree).
        """
        if self.num_levels < 3:
            raise ValueError("conversion requires a populated third level")
        new_level2 = {seq: resolver(seq) for seq in self.level_sequences(2)}
        self.overwrite_level(2, new_level2)
        self.truncate_to_level(2)
