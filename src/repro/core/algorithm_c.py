"""Algorithm C (Theorem 4) — the Dolev–Reischuk–Strong adaptation.

Algorithm C trades resilience for efficiency: it tolerates only
``t_C ≈ √(n/2)`` faults but runs in ``t + 1`` rounds with ``O(n)``-bit
messages and ``O(n^2.5)`` local computation.  Its Information Gathering Tree
is built *with repetitions* (every internal node has exactly ``n`` children,
one per processor name) and is never more than three levels deep:

* the first round stores the source's value at the root,
* the second round stores every processor's claimed root value at the
  intermediate vertices ``sq``,
* from the third round on, each round (i) stores at ``sqr`` the value ``r``
  claims for ``sq``, applying the Fault Discovery and Fault Masking Rules,
  (ii) *reorders* the leaves by swapping ``tree(spq)`` and ``tree(sqp)`` so
  that the subtree under ``sq`` holds exactly the values received from ``q``
  this round, and (iii) applies ``shift_{3→2}``: ``tree(sq) := resolve(sq)``.

After round ``t + 1`` a final ``shift_{2→1}`` (``tree(s) := resolve(s)``)
yields the decision.  Correctness hinges on a per-round dichotomy: in every
round after the second, either a new fault is globally detected or a
"persistent" value (Lemma 6) is obtained, and once all faults are detected the
leaves are common.

Silent-source substitution
--------------------------
The source decides in round 1 and never sends again, yet the repetition tree
gives every internal node a child labelled ``s``.  Storing the default value
there would let ``t`` faulty processors plus the silent source exceed the
``t − |L_p|`` deviation budget of the Fault Discovery Rule and incriminate a
*correct* processor.  We therefore fill the ``s``-labelled child of a node
``α`` with the processor's *own* stored value for ``α`` — exactly how the
processor fills the child labelled with its own name.  This never introduces
a value that differs from the processor's own view, so it cannot cause
spurious discoveries, and it contributes at most one extra (self-consistent)
vote to the majorities used in Lemma 6, whose counting has strictly more
slack than one vote under the ``t ≤ t_C`` conditions.  The choice is recorded
in DESIGN.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .engine import FAST, NUMPY, validate_engine
from .fault_discovery import FaultTracker, window_majority
from .fault_masking import (discover_and_mask, gather_level_flat,
                            gather_level_numpy, mask_inbox)
from .protocol import AgreementProtocol, ProtocolConfig, ProtocolSpec
from .resolve import flat_resolve_levels, numpy_resolve_root, resolve
from .sequences import LabelSequence, ProcessorId
from .tree import make_tree
from .values import DEFAULT_VALUE, Value, coerce_value, is_bottom
from ..runtime.errors import ConfigurationError
from ..runtime.messages import (Inbox, Message, Outbox, broadcast,
                                broadcast_message)


def algorithm_c_resilience(n: int) -> int:
    """Maximum resilience of Algorithm C for *n* processors.

    The paper states ``t_C ≈ √(n/2)``; we use the exact conditions from the
    proof of Proposition 4: the largest ``t`` with ``n − t − (t − 1)² > n/2``
    and ``n − 2t > n/2`` (both strict).  Returns 0 when no ``t ≥ 1`` works.
    """
    best = 0
    t = 1
    while True:
        if (n - t - (t - 1) ** 2) * 2 > n and (n - 2 * t) * 2 > n:
            best = t
            t += 1
        else:
            return best


def algorithm_c_rounds(t: int) -> int:
    """Rounds of communication used by Algorithm C: ``t + 1``."""
    return t + 1


def algorithm_c_max_message_entries(n: int) -> int:
    """Entries of the largest message: the ``n`` intermediate values, ``O(n)``."""
    return n


class AlgorithmCProcessor(AgreementProtocol):
    """One processor's execution of Algorithm C.

    The processor can be run standalone (local rounds ``1 .. t + 1``) or
    embedded in the hybrid algorithm, in which case it starts "at the end of
    round 1" with a supplied preferred value and an existing fault list and
    runs local rounds ``2 .. last_round``.
    """

    def __init__(self, pid: ProcessorId, config: ProtocolConfig,
                 first_round: int = 1, last_round: Optional[int] = None,
                 initial_root: Optional[Value] = None,
                 tracker: Optional[FaultTracker] = None,
                 engine: Optional[str] = None) -> None:
        super().__init__(pid, config)
        if first_round not in (1, 2):
            raise ConfigurationError("Algorithm C can only start at round 1 or 2")
        self.first_round = first_round
        self.last_round = last_round if last_round is not None else config.t + 1
        if self.last_round < max(2, first_round):
            raise ConfigurationError(
                f"Algorithm C needs at least two rounds (got last_round={self.last_round})")
        self.engine = validate_engine(engine)
        self._fast = self.engine == FAST
        self._numpy = self.engine == NUMPY
        self._array_backed = self._fast or self._numpy
        self.tree = make_tree(config.source, config.processors, self.engine,
                              repetitions=True)
        self._domain_set = frozenset(v for v in config.domain
                                     if not is_bottom(v))
        self.tracker = tracker if tracker is not None else FaultTracker(pid, config.t)
        self.discovery_log: Dict[int, int] = {}
        self.preferred_log: Dict[int, Value] = {}
        if first_round == 2:
            if initial_root is None:
                raise ConfigurationError(
                    "starting Algorithm C at round 2 requires an initial preferred value")
            self.tree.set_root(initial_root)

    # -- AgreementProtocol API --------------------------------------------------
    @property
    def total_rounds(self) -> int:
        return self.last_round

    def outgoing(self, round_number: int) -> Outbox:
        self._check_round(round_number)
        if self.pid == self.config.source:
            if round_number == 1:
                entries = {self.tree.root: self.config.initial_value}
                return broadcast(entries, self.pid, round_number,
                                 self.config.processors)
            return {}
        if round_number == 1:
            return {}
        if round_number == 2:
            entries = {self.tree.root: self.tree.root_value()}
        elif self._array_backed and self.tree.num_levels >= 2:
            message = self.tree.level_message(2, self.pid, round_number)
            return broadcast_message(message, self.config.processors)
        else:
            # A tree without level 2 (a recovering processor's stale shadow)
            # degrades to an empty broadcast, exactly like the reference path.
            entries = self.tree.level(2)
        return broadcast(entries, self.pid, round_number, self.config.processors)

    def incoming(self, round_number: int, inbox: Inbox) -> None:
        if self.pid == self.config.source:
            if round_number == 1:
                self._decide(self.config.initial_value)
            return
        if round_number == 1:
            self._store_root(inbox.get(self.config.source))
        elif round_number == 2:
            self._gather_intermediate(round_number, inbox)
        else:
            self._gather_leaves(round_number, inbox)
        if round_number == self.last_round:
            self._finish()

    # -- round bodies ----------------------------------------------------------------
    def _store_root(self, source_message: Optional[Message]) -> None:
        claimed = None
        if source_message is not None:
            claimed = source_message.value_for(self.tree.root)
        self.tree.set_root(coerce_value(claimed, self.config.domain))

    def _claim(self, masked_inbox: Inbox, parent: LabelSequence,
               child: ProcessorId) -> Value:
        """The value stored at ``parent + (child,)`` for this round's level.

        The processor's own child and the silent source's child echo the
        processor's stored value for *parent*; every other child comes from
        the (masked) inbox with the default-value substitution for missing or
        malformed entries.

        The substitution stands in for the source's (never sent) message, so
        the Fault Masking Rule applies to it exactly as to a real message:
        once the source is in ``L_p`` its substituted values are the default.
        Without this, each side of a round-1 equivocation keeps re-injecting
        its own world view through the source-labelled children after the
        source has been discovered, and the sides never reconverge.
        """
        if child == self.pid:
            return self.tree.value(parent)
        if child == self.config.source:
            if self.config.source in self.tracker:
                return DEFAULT_VALUE
            return self.tree.value(parent)
        message = masked_inbox.get(child)
        if message is None:
            return DEFAULT_VALUE
        return coerce_value(message.value_for(parent), self.config.domain)

    def _grow_level(self, level: int, inbox: Inbox) -> None:
        """Populate *level* from the round's inbox (engine-dispatched)."""
        if self._array_backed:
            self._gather_level_array(level, inbox)
        else:
            masked = mask_inbox(inbox, self.tracker.suspects)
            self.tree.grow_level(
                level, lambda parent, child: self._claim(masked, parent, child))

    def _gather_level_array(self, level: int, inbox: Inbox) -> None:
        """Array-buffer gathering via
        :func:`~repro.core.fault_masking.gather_level_flat` or its ndarray
        twin :func:`~repro.core.fault_masking.gather_level_numpy`.  The
        special labels mirror :meth:`_claim`: the processor's own children and
        the silent source's children echo its own stored values, and once the
        source is in ``L_p`` its substitution is masked to the default."""
        source = self.config.source
        if source in self.tracker:
            echo_labels, masked_labels = (self.pid,), (source,)
        else:
            echo_labels, masked_labels = (self.pid, source), ()
        gather = gather_level_numpy if self._numpy else gather_level_flat
        gather(self.tree, level, inbox, self.tracker,
               self._domain_set, echo_labels=echo_labels,
               masked_labels=masked_labels)

    def _gather_intermediate(self, round_number: int, inbox: Inbox) -> None:
        """Round 2: populate the intermediate vertices ``sq`` and discover faults."""
        self._grow_level(2, inbox)
        newly = discover_and_mask(self.tree, 2, self.tracker, round_number)
        if newly:
            self.discovery_log[round_number] = len(newly)

    def _gather_leaves(self, round_number: int, inbox: Inbox) -> None:
        """Rounds ≥ 3: populate the leaves, discover, mask, reorder, convert."""
        self._grow_level(3, inbox)
        newly = discover_and_mask(self.tree, 3, self.tracker, round_number)
        if newly:
            self.discovery_log[round_number] = len(newly)
        self.tree.reorder_leaves()
        if self._numpy:
            self._convert_intermediate_numpy()
        elif self._fast:
            self._convert_intermediate_fast()
        else:
            self.tree.convert_intermediate(lambda seq: resolve(self.tree, seq))
        self.preferred_log[round_number] = self._current_preference()

    def _convert_intermediate_fast(self) -> None:
        """``shift_{3→2}`` over the flat buffers: the level-3 slice of each
        intermediate vertex is a contiguous window, so the conversion is one
        majority pass with no per-node resolver call."""
        tree = self.tree
        n = self.config.n
        leaves = tree.raw_level(3)
        new_level2: List[Value] = [DEFAULT_VALUE] * n
        for i in range(n):
            majority = window_majority(leaves[i * n:(i + 1) * n], n)
            if majority is not None:
                new_level2[i] = majority
        # Visit parity with the per-vertex reference resolver: two units per
        # leaf plus one per child of each intermediate vertex.
        tree.meter.charge(3 * n * n)
        tree.replace_level(2, new_level2)
        tree.truncate_to_level(2)

    def _convert_intermediate_numpy(self) -> None:
        """``shift_{3→2}`` over the code ndarrays: one ``bincount`` majority
        vote over the ``n × n`` leaf matrix replaces the per-vertex windows
        (identical semantics and meter parity with the flat fast path)."""
        from .npsupport import (DEFAULT_CODE, VALUE_CODEC, require_numpy,
                                strict_majority, vote_windows, window_tallies)
        np = require_numpy()
        tree = self.tree
        n = self.config.n
        leaves = tree.raw_level(3)
        tallies = window_tallies(vote_windows(leaves, n, n),
                                 len(VALUE_CODEC))
        best, has_majority = strict_majority(tallies, n)
        new_level2 = np.where(has_majority, best,
                              DEFAULT_CODE).astype(leaves.dtype)
        tree.meter.charge(3 * n * n)
        tree.replace_level(2, new_level2)
        tree.truncate_to_level(2)

    def _finish(self) -> None:
        """``shift_{2→1}``: the decision is ``resolve(s)`` over the 2-level tree."""
        decision = self._current_preference()
        self.tree.reset_to_root(decision)
        self._decide(decision)

    def _current_preference(self) -> Value:
        """The value ``resolve(s)`` *would* return now (the paper's "preferred
        value at the end of round k"); the algorithm does not act on it except
        at the very end, but experiments track it to observe persistence."""
        if self._numpy:
            return numpy_resolve_root(self.tree, "resolve", self.config.t)
        if self._fast:
            return flat_resolve_levels(self.tree, "resolve",
                                       self.config.t)[0][0]
        return resolve(self.tree, self.tree.root)

    # -- introspection -------------------------------------------------------------------
    def preferred_value(self) -> Value:
        if self.pid == self.config.source:
            return self.config.initial_value
        if self.tree.num_levels >= 2:
            return self._current_preference()
        return self.tree.root_value()

    def discovered_faults(self):
        return tuple(sorted(self.tracker.suspects))

    def computation_units(self) -> int:
        return self.tree.meter.units


class AlgorithmCSpec(ProtocolSpec):
    """Protocol spec for standalone Algorithm C."""

    name = "algorithm-c"

    def validate(self, config: ProtocolConfig) -> None:
        limit = algorithm_c_resilience(config.n)
        if config.t > limit:
            raise ConfigurationError(
                f"Algorithm C tolerates at most t={limit} faults for n={config.n} "
                f"(requested t={config.t})")

    def total_rounds(self, config: ProtocolConfig) -> int:
        return algorithm_c_rounds(config.t)

    def build(self, pid: ProcessorId, config: ProtocolConfig) -> AgreementProtocol:
        self.validate(config)
        return AlgorithmCProcessor(pid, config)

    def describe(self) -> str:
        return "algorithm-c: t+1 rounds, O(n) bits, resilience ≈ √(n/2)"
