"""Protocol interfaces shared by every agreement algorithm in the package.

The synchronous model of the paper is captured by a narrow, round-driven
interface: in every round each processor first produces its outgoing messages
(:meth:`AgreementProtocol.outgoing`), the network delivers them, and then each
processor consumes its inbox (:meth:`AgreementProtocol.incoming`).  After the
protocol's last round every correct processor must hold an irreversible
decision (:meth:`AgreementProtocol.decision`).

A :class:`ProtocolSpec` is the stateless description of an algorithm (its name,
parameter validation, round count, and processor factory); the simulation
driver instantiates one :class:`AgreementProtocol` per correct processor from
a spec.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from .sequences import ProcessorId
from .values import DEFAULT_VALUE, Value, default_domain
from ..runtime.errors import ConfigurationError, ProtocolViolationError
from ..runtime.messages import Inbox, Outbox


@dataclass(frozen=True)
class ProtocolConfig:
    """Static parameters of one agreement instance.

    Attributes
    ----------
    n:
        Total number of processors.
    t:
        Resilience target: the maximum number of faulty processors the
        execution must tolerate.
    source:
        Identifier of the distinguished source (the broadcaster).
    initial_value:
        The source's input value ``v``.
    domain:
        The finite value set ``V`` (must contain 0, the default value).
    allow_unsafe:
        Permit instances below the protocols' resilience requirements
        (``n < 3t + 1``, down to ``n = 3``).  The theorems' guarantees do
        not apply there — that is the point: the adversary-search harness
        hunts such cells for concrete agreement violations.
    """

    n: int
    t: int
    source: ProcessorId = 0
    initial_value: Value = DEFAULT_VALUE
    domain: Tuple[Value, ...] = field(default_factory=default_domain)
    allow_unsafe: bool = False

    def __post_init__(self) -> None:
        floor = 3 if self.allow_unsafe else 4
        if self.n < floor:
            raise ConfigurationError(
                "the Byzantine agreement problem requires n ≥ 4"
                if not self.allow_unsafe
                else "even unsafe instances need n ≥ 3 (a source and two "
                     "deciders)")
        if self.t < 1:
            raise ConfigurationError("resilience t must be at least 1")
        if not 0 <= self.source < self.n:
            raise ConfigurationError(
                f"source {self.source} is not a processor id in [0, {self.n})")
        if DEFAULT_VALUE not in self.domain:
            raise ConfigurationError("the value domain must contain the default value 0")
        if len(set(self.domain)) < 2:
            raise ConfigurationError(
                "the value domain needs at least two distinct elements "
                "(agreement over a singleton domain is vacuous)")
        if self.initial_value not in self.domain:
            raise ConfigurationError(
                f"initial value {self.initial_value!r} is not in the domain")

    @property
    def processors(self) -> Tuple[ProcessorId, ...]:
        return tuple(range(self.n))

    def others(self, pid: ProcessorId) -> Tuple[ProcessorId, ...]:
        return tuple(p for p in self.processors if p != pid)


class AgreementProtocol(abc.ABC):
    """One processor's state machine for a synchronous agreement protocol."""

    def __init__(self, pid: ProcessorId, config: ProtocolConfig) -> None:
        self.pid = pid
        self.config = config
        self._decided = False
        self._decision: Optional[Value] = None
        self._last_round_seen = 0

    # -- round API ---------------------------------------------------------
    @property
    @abc.abstractmethod
    def total_rounds(self) -> int:
        """Number of communication rounds this protocol uses."""

    @abc.abstractmethod
    def outgoing(self, round_number: int) -> Outbox:
        """Messages this processor sends at the start of *round_number*."""

    @abc.abstractmethod
    def incoming(self, round_number: int, inbox: Inbox) -> None:
        """Consume the messages delivered in *round_number*."""

    # -- decisions ----------------------------------------------------------
    @property
    def decided(self) -> bool:
        return self._decided

    def decision(self) -> Value:
        """The irreversible decision value (raises if not yet decided)."""
        if not self._decided:
            raise ProtocolViolationError(
                f"processor {self.pid} has not decided yet")
        return self._decision

    def _decide(self, value: Value) -> None:
        """Record an irreversible decision (subsequent calls must agree)."""
        if self._decided and self._decision != value:
            raise ProtocolViolationError(
                f"processor {self.pid} attempted to change its decision "
                f"from {self._decision!r} to {value!r}")
        self._decided = True
        self._decision = value

    # -- round bookkeeping ----------------------------------------------------
    def _check_round(self, round_number: int) -> None:
        """Enforce that rounds are visited in increasing order from 1."""
        if round_number < 1 or round_number > self.total_rounds:
            raise ProtocolViolationError(
                f"round {round_number} outside 1..{self.total_rounds}")
        if round_number < self._last_round_seen:
            raise ProtocolViolationError(
                f"round {round_number} visited after round {self._last_round_seen}")
        self._last_round_seen = round_number

    # -- introspection hooks (optional overrides) -------------------------------
    def computation_units(self) -> int:
        """Local computation units consumed so far (0 when not tracked)."""
        return 0

    def discovered_faults(self) -> Sequence[ProcessorId]:
        """Processors this processor has discovered to be faulty (``L_p``)."""
        return ()

    def preferred_value(self) -> Value:
        """The current preferred value (root of the tree), if meaningful."""
        return self._decision if self._decided else DEFAULT_VALUE


class ProtocolSpec(abc.ABC):
    """Stateless description of an agreement algorithm."""

    #: Human-readable name used in reports and benchmark tables.
    name: str = "protocol"

    @abc.abstractmethod
    def validate(self, config: ProtocolConfig) -> None:
        """Raise :class:`ConfigurationError` if *config* violates the
        algorithm's requirements (resilience bound, parameter range)."""

    @abc.abstractmethod
    def total_rounds(self, config: ProtocolConfig) -> int:
        """Worst-case number of communication rounds for *config*."""

    @abc.abstractmethod
    def build(self, pid: ProcessorId, config: ProtocolConfig) -> AgreementProtocol:
        """Instantiate the processor *pid*'s protocol object."""

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ProtocolSpec {self.describe()}>"
