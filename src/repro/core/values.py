"""Value domain used by all Byzantine-agreement protocols in this package.

The paper assumes the initial value of the source is drawn from a finite set
``V`` that contains 0, and it uses two distinguished values:

* ``DEFAULT_VALUE`` (0) — stored whenever a processor fails to send a
  legitimate value, and used by the Fault Masking Rule.
* ``BOTTOM`` (written ``⊥`` in the paper) — produced only by the threshold
  conversion function ``resolve'`` of Algorithm A.  It never appears inside an
  Information Gathering Tree; if a final conversion yields ``BOTTOM`` the
  processor adopts ``DEFAULT_VALUE`` instead.

Values are ordinary hashable Python objects (ints in all examples and tests),
so the library works with any finite domain the caller chooses.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Tuple

Value = Hashable

#: The default value, element of ``V`` (the paper assumes ``0 ∈ V``).
DEFAULT_VALUE: Value = 0


class _Bottom:
    """Singleton sentinel for the ``⊥`` value used by ``resolve'``.

    ``BOTTOM`` compares equal only to itself, hashes consistently, and has a
    stable ``repr`` so that it can be stored in counters and sets without
    surprises.  It is deliberately *not* an element of ``V``.
    """

    _instance = None

    def __new__(cls) -> "_Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "BOTTOM"

    def __reduce__(self):
        return (_Bottom, ())

    def __bool__(self) -> bool:
        return False


#: The ``⊥`` sentinel produced by ``resolve'`` when no unique value reaches
#: the ``t + 1`` threshold.
BOTTOM = _Bottom()


def is_bottom(value: Value) -> bool:
    """Return ``True`` iff *value* is the ``⊥`` sentinel."""
    return value is BOTTOM


def default_domain(size: int = 2) -> Tuple[Value, ...]:
    """Return the canonical value domain ``{0, 1, ..., size - 1}``.

    The paper treats ``|V|`` as a constant and notes that larger domains can
    be reduced to binary at the cost of two rounds; the simulator supports any
    finite domain, but examples and benchmarks default to binary values.
    """
    if size < 2:
        raise ValueError("a value domain needs at least two elements")
    return tuple(range(size))


def coerce_value(value: Value, domain: Iterable[Value]) -> Value:
    """Validate *value* against *domain*, substituting the default.

    This implements the paper's "a special default value of 0 ∈ V is stored if
    the processor failed to send a legitimate value in V" rule: any value that
    is not a member of the (finite) domain — including ``None`` for a missing
    message and ``BOTTOM`` — is replaced by :data:`DEFAULT_VALUE`.
    """
    domain_set = set(domain)
    if value in domain_set and not is_bottom(value):
        return value
    return DEFAULT_VALUE
