"""Label sequences (root-to-node paths) of Information Gathering Trees.

A *sequence* is an ordered tuple of processor identifiers, always beginning
with the source ``s``.  The paper uses two flavours:

* **without repetitions** (the Exponential Algorithm, Algorithms A and B):
  no processor name appears twice on a root-to-leaf path, so a node
  ``α`` of length ``|α|`` has exactly ``n − |α|`` children;
* **with repetitions** (Algorithm C): every internal node has exactly ``n``
  children, one per processor name.

Sequences are plain tuples of ints so they can be dictionary keys, sorted,
and serialised into messages without any wrapper object; this module collects
the helpers for generating and validating them.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

ProcessorId = int
LabelSequence = Tuple[ProcessorId, ...]


def validate_sequence(seq: Sequence[ProcessorId], source: ProcessorId,
                      n: int, allow_repetitions: bool = False) -> LabelSequence:
    """Validate and normalise a label sequence.

    Raises :class:`ValueError` when the sequence is empty, does not start with
    the source, mentions an unknown processor, or (for trees without
    repetitions) repeats a label.
    """
    seq = tuple(seq)
    if not seq:
        raise ValueError("a label sequence must not be empty")
    if seq[0] != source:
        raise ValueError(f"sequence {seq!r} must begin with the source {source}")
    for pid in seq:
        if not 0 <= pid < n:
            raise ValueError(f"unknown processor id {pid} in sequence {seq!r}")
    if not allow_repetitions and len(set(seq)) != len(seq):
        raise ValueError(f"sequence {seq!r} repeats a processor name")
    return seq


def child_labels(seq: Sequence[ProcessorId], processors: Sequence[ProcessorId],
                 allow_repetitions: bool = False) -> List[ProcessorId]:
    """Return the labels of the children of node *seq*.

    Without repetitions the children are every processor not already on the
    path (the source is on every path, so it never reappears); with
    repetitions every processor, including those on the path, is a child.
    """
    if allow_repetitions:
        return list(processors)
    on_path = set(seq)
    return [pid for pid in processors if pid not in on_path]


def sequences_of_length(length: int, source: ProcessorId,
                        processors: Sequence[ProcessorId],
                        allow_repetitions: bool = False) -> Iterator[LabelSequence]:
    """Yield every valid sequence of the given *length* (root included).

    ``length == 1`` yields only the root ``(source,)``.  The enumeration order
    is deterministic (depth-first, children in processor-id order) so that the
    full tree shape can be reproduced independently of any particular
    execution.
    """
    if length < 1:
        return
    stack: List[LabelSequence] = [(source,)]
    while stack:
        seq = stack.pop()
        if len(seq) == length:
            yield seq
            continue
        for pid in reversed(child_labels(seq, processors, allow_repetitions)):
            stack.append(seq + (pid,))


def count_sequences_of_length(length: int, n: int,
                              allow_repetitions: bool = False) -> int:
    """Number of sequences of a given length over *n* processors.

    Without repetitions this is ``(n−1)(n−2)···(n−length+1)`` (the root label
    is fixed to the source); with repetitions it is ``n^(length−1)``.
    This matches the paper's ``O(n^{h−1})`` leaf-count bound for the round-h
    tree.
    """
    if length < 1:
        return 0
    if allow_repetitions:
        return n ** (length - 1)
    count = 1
    for i in range(1, length):
        remaining = n - i
        if remaining <= 0:
            return 0
        count *= remaining
    return count


def corresponding_processor(seq: Sequence[ProcessorId]) -> ProcessorId:
    """The processor *corresponding to* a node: the last name in the sequence."""
    if not seq:
        raise ValueError("empty sequence has no corresponding processor")
    return seq[-1]


def strict_prefixes(seq: Sequence[ProcessorId]) -> Iterator[LabelSequence]:
    """Yield every strict prefix of *seq* (shortest first)."""
    seq = tuple(seq)
    for i in range(1, len(seq)):
        yield seq[:i]


def is_prefix(prefix: Sequence[ProcessorId], seq: Sequence[ProcessorId]) -> bool:
    """Return ``True`` iff *prefix* is a (not necessarily strict) prefix of *seq*."""
    prefix = tuple(prefix)
    seq = tuple(seq)
    return len(prefix) <= len(seq) and seq[:len(prefix)] == prefix


class SequenceIndex:
    """Interned label sequences with level-major integer node-ids.

    The fast EIG engine never uses tuples as dictionary keys on its hot paths.
    Instead, every valid sequence of a given tree shape is assigned a dense
    integer *node-id* within its level, and the per-level tables below are
    computed **once** per ``(source, processors, allow_repetitions)`` and
    shared by every processor of every run with that shape (the tables depend
    only on the tree's combinatorics, not on any execution).

    Level ``ℓ`` (1-based, sequences of length ``ℓ``) is laid out
    *parent-major*: the children of the node with id ``i`` at level ``ℓ``
    occupy the contiguous id range ``[i·b, (i+1)·b)`` at level ``ℓ + 1``,
    where ``b = branch(ℓ)`` is the uniform branching factor of the level
    (``n − ℓ`` without repetitions, ``n`` with).  Within a parent, children
    appear in processor-id order — exactly the enumeration order of
    :func:`child_labels` — so the flat layout reproduces the reference tree's
    deterministic shape.  Parent ids are pure arithmetic:
    ``parent_of(ℓ + 1, j) == j // branch(ℓ)``.

    Tables per level:

    * ``sequences(ℓ)`` — node-id → label sequence (tuple), for interop with
      dict-based messages and for reporting;
    * ``id_map(ℓ)`` — label sequence → node-id (the interning direction);
    * ``last_labels(ℓ)`` — node-id → last label (the *corresponding
      processor* of the node), used by fault discovery and masking;
    * ``slots_for(ℓ)`` — label ``c`` → ``(slots, parents)`` arrays: the level
      ``ℓ`` node-ids whose last label is ``c`` and their parent ids at level
      ``ℓ − 1``.  Gathering a round's level from the network is one zip-copy
      per sender over these arrays; masking a discovered sender rewrites
      exactly ``slots``.
    """

    def __init__(self, source: ProcessorId, processors: Sequence[ProcessorId],
                 allow_repetitions: bool = False) -> None:
        self.source = source
        self.processors: Tuple[ProcessorId, ...] = tuple(processors)
        if source not in self.processors:
            raise ValueError("the source must be one of the processors")
        self.n = len(self.processors)
        self.allow_repetitions = allow_repetitions
        self._seqs: List[List[LabelSequence]] = [[(source,)]]
        self._id_of: List[Dict[LabelSequence, int]] = [{(source,): 0}]
        self._last: List[List[ProcessorId]] = [[source]]
        self._slots: List[Dict[ProcessorId, Tuple[List[int], List[int]]]] = [{}]
        #: lazily built ndarray twins of the tables above (numpy engine only)
        self._np_tables: Dict[Tuple[str, int], object] = {}

    # -- shape ---------------------------------------------------------------
    def branch(self, level: int) -> int:
        """Children per node at *level* (uniform within a level)."""
        if self.allow_repetitions:
            return self.n
        return max(0, self.n - level)

    def max_levels(self) -> int:
        """Deepest buildable level (unbounded with repetitions)."""
        if self.allow_repetitions:
            return 1 << 30
        return self.n

    def ensure_level(self, level: int) -> None:
        """Materialise the tables for every level up to *level* (idempotent)."""
        if level > self.max_levels():
            raise ValueError(
                f"a tree without repetitions over {self.n} processors has no "
                f"level {level}")
        while len(self._seqs) < level:
            self._grow_one_level()

    def _grow_one_level(self) -> None:
        parent_level = len(self._seqs)
        parents = self._seqs[parent_level - 1]
        seqs: List[LabelSequence] = []
        last: List[ProcessorId] = []
        id_of: Dict[LabelSequence, int] = {}
        slots: Dict[ProcessorId, Tuple[List[int], List[int]]] = {}
        append_seq = seqs.append
        append_last = last.append
        for parent_id, parent in enumerate(parents):
            for child in child_labels(parent, self.processors,
                                      self.allow_repetitions):
                node_id = len(seqs)
                seq = parent + (child,)
                append_seq(seq)
                append_last(child)
                id_of[seq] = node_id
                entry = slots.get(child)
                if entry is None:
                    entry = slots[child] = ([], [])
                entry[0].append(node_id)
                entry[1].append(parent_id)
        self._seqs.append(seqs)
        self._id_of.append(id_of)
        self._last.append(last)
        self._slots.append(slots)

    # -- per-level tables ------------------------------------------------------
    def level_size(self, level: int) -> int:
        self.ensure_level(level)
        return len(self._seqs[level - 1])

    def sequences(self, level: int) -> List[LabelSequence]:
        """Node-id → sequence table for *level* (do not mutate)."""
        self.ensure_level(level)
        return self._seqs[level - 1]

    def id_map(self, level: int) -> Dict[LabelSequence, int]:
        """Sequence → node-id table for *level* (do not mutate)."""
        self.ensure_level(level)
        return self._id_of[level - 1]

    def last_labels(self, level: int) -> List[ProcessorId]:
        """Node-id → last label (corresponding processor) for *level*."""
        self.ensure_level(level)
        return self._last[level - 1]

    def slots_for(self, level: int) -> Dict[ProcessorId,
                                            Tuple[List[int], List[int]]]:
        """Label → ``(slots, parents)`` arrays for *level* (do not mutate)."""
        self.ensure_level(level)
        return self._slots[level - 1]

    # -- ndarray twins (numpy engine) ------------------------------------------
    # Like everything else in the index these depend only on the tree shape,
    # so they are built once per level and shared by every numpy-engine tree
    # and every run of that shape.  They are only reachable from the "numpy"
    # engine, which is gated on numpy availability at selection time.

    def last_labels_np(self, level: int):
        """Node-id → last label as an int ndarray (numpy engine)."""
        cached = self._np_tables.get(("last", level))
        if cached is None:
            from .npsupport import require_numpy
            np = require_numpy()
            cached = np.asarray(self.last_labels(level), dtype=np.int64)
            self._np_tables[("last", level)] = cached
        return cached

    def slots_np(self, level: int):
        """Label → ``(slots, parents)`` id ndarrays for *level* (numpy engine)."""
        cached = self._np_tables.get(("slots", level))
        if cached is None:
            from .npsupport import require_numpy
            np = require_numpy()
            cached = {
                label: (np.asarray(slots, dtype=np.int64),
                        np.asarray(parents, dtype=np.int64))
                for label, (slots, parents) in self.slots_for(level).items()
            }
            self._np_tables[("slots", level)] = cached
        return cached

    def parent_ids_np(self, level: int):
        """Node-id → parent node-id at ``level − 1`` (int ndarray, cached).

        Pure arithmetic (``id // branch(level − 1)``), materialised once per
        level so the batched gather reuses it every round.
        """
        cached = self._np_tables.get(("parents", level))
        if cached is None:
            from .npsupport import require_numpy
            np = require_numpy()
            branch = self.branch(level - 1)
            cached = np.arange(self.level_size(level),
                               dtype=np.int64) // branch
            self._np_tables[("parents", level)] = cached
        return cached

    def ids_by_label_py(self, level: int) -> Dict[ProcessorId, List[int]]:
        """Label → ascending list of the *level* node-ids ending in that label.

        Plain-python twin of :meth:`ids_by_label_np` (the same interned
        ``slots`` lists, no copies), used by the batched discovery passes'
        fired-row fast scan; cached once per level per shape.
        """
        cached = self._np_tables.get(("ids_py", level))
        if cached is None:
            if level == 1:
                self.ensure_level(1)
                cached = {self.source: [0]}
            else:
                cached = {label: slots
                          for label, (slots, _parents)
                          in self.slots_for(level).items()}
            self._np_tables[("ids_py", level)] = cached
        return cached

    def ids_by_label_np(self, level: int):
        """Label → ndarray of the *level* node-ids ending in that label.

        Level 1 is the root-only special case (its ``slots_for`` table is
        empty because the root has no parent): the single node-id 0 belongs to
        the source's label.
        """
        cached = self._np_tables.get(("ids", level))
        if cached is None:
            from .npsupport import require_numpy
            np = require_numpy()
            if level == 1:
                self.ensure_level(1)
                cached = {self.source: np.asarray([0], dtype=np.int64)}
            else:
                cached = {label: slots
                          for label, (slots, _parents)
                          in self.slots_np(level).items()}
            self._np_tables[("ids", level)] = cached
        return cached

    def node_id(self, seq: Sequence[ProcessorId]) -> int:
        """The node-id of *seq* within its level (raises for invalid sequences)."""
        seq = tuple(seq)
        self.ensure_level(len(seq))
        try:
            return self._id_of[len(seq) - 1][seq]
        except KeyError:
            raise ValueError(f"{seq!r} is not a node of this tree shape") from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "with" if self.allow_repetitions else "without"
        return (f"SequenceIndex(n={self.n}, source={self.source}, "
                f"{kind} repetitions, built_levels={len(self._seqs)})")


#: Shared per-shape index cache.  Keyed by the full shape so arbitrary
#: processor-id sets (used in tests) get their own tables; in simulation use
#: the processors are always ``range(n)`` so one entry serves every processor
#: of every run at a given ``(n, source)``.
_INDEX_CACHE: Dict[Tuple[ProcessorId, Tuple[ProcessorId, ...], bool],
                   "SequenceIndex"] = {}


def sequence_index(source: ProcessorId, processors: Sequence[ProcessorId],
                   allow_repetitions: bool = False) -> SequenceIndex:
    """The shared :class:`SequenceIndex` for a tree shape (built on demand)."""
    key = (source, tuple(processors), allow_repetitions)
    index = _INDEX_CACHE.get(key)
    if index is None:
        index = _INDEX_CACHE[key] = SequenceIndex(source, key[1],
                                                  allow_repetitions)
    return index


def clear_sequence_index_cache() -> None:
    """Drop every cached index (their tables are O(n^levels) tuples each).

    Long-lived processes sweeping many distinct ``(n, source)`` shapes can
    call this between sweeps to release the retained tables; live trees keep
    their own references, so clearing is always safe.
    """
    _INDEX_CACHE.clear()


def all_faulty(seq: Sequence[ProcessorId], faulty: Iterable[ProcessorId]) -> bool:
    """Return ``True`` iff every processor named in *seq* is faulty.

    Used by tests that check the Hidden Fault Lemma and its corollaries, which
    are stated for nodes ``αr`` in which all processors are faulty.
    """
    faulty_set = set(faulty)
    return all(pid in faulty_set for pid in seq)
