"""Label sequences (root-to-node paths) of Information Gathering Trees.

A *sequence* is an ordered tuple of processor identifiers, always beginning
with the source ``s``.  The paper uses two flavours:

* **without repetitions** (the Exponential Algorithm, Algorithms A and B):
  no processor name appears twice on a root-to-leaf path, so a node
  ``α`` of length ``|α|`` has exactly ``n − |α|`` children;
* **with repetitions** (Algorithm C): every internal node has exactly ``n``
  children, one per processor name.

Sequences are plain tuples of ints so they can be dictionary keys, sorted,
and serialised into messages without any wrapper object; this module collects
the helpers for generating and validating them.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

ProcessorId = int
LabelSequence = Tuple[ProcessorId, ...]


def validate_sequence(seq: Sequence[ProcessorId], source: ProcessorId,
                      n: int, allow_repetitions: bool = False) -> LabelSequence:
    """Validate and normalise a label sequence.

    Raises :class:`ValueError` when the sequence is empty, does not start with
    the source, mentions an unknown processor, or (for trees without
    repetitions) repeats a label.
    """
    seq = tuple(seq)
    if not seq:
        raise ValueError("a label sequence must not be empty")
    if seq[0] != source:
        raise ValueError(f"sequence {seq!r} must begin with the source {source}")
    for pid in seq:
        if not 0 <= pid < n:
            raise ValueError(f"unknown processor id {pid} in sequence {seq!r}")
    if not allow_repetitions and len(set(seq)) != len(seq):
        raise ValueError(f"sequence {seq!r} repeats a processor name")
    return seq


def child_labels(seq: Sequence[ProcessorId], processors: Sequence[ProcessorId],
                 allow_repetitions: bool = False) -> List[ProcessorId]:
    """Return the labels of the children of node *seq*.

    Without repetitions the children are every processor not already on the
    path (the source is on every path, so it never reappears); with
    repetitions every processor, including those on the path, is a child.
    """
    if allow_repetitions:
        return list(processors)
    on_path = set(seq)
    return [pid for pid in processors if pid not in on_path]


def sequences_of_length(length: int, source: ProcessorId,
                        processors: Sequence[ProcessorId],
                        allow_repetitions: bool = False) -> Iterator[LabelSequence]:
    """Yield every valid sequence of the given *length* (root included).

    ``length == 1`` yields only the root ``(source,)``.  The enumeration order
    is deterministic (depth-first, children in processor-id order) so that the
    full tree shape can be reproduced independently of any particular
    execution.
    """
    if length < 1:
        return
    stack: List[LabelSequence] = [(source,)]
    while stack:
        seq = stack.pop()
        if len(seq) == length:
            yield seq
            continue
        for pid in reversed(child_labels(seq, processors, allow_repetitions)):
            stack.append(seq + (pid,))


def count_sequences_of_length(length: int, n: int,
                              allow_repetitions: bool = False) -> int:
    """Number of sequences of a given length over *n* processors.

    Without repetitions this is ``(n−1)(n−2)···(n−length+1)`` (the root label
    is fixed to the source); with repetitions it is ``n^(length−1)``.
    This matches the paper's ``O(n^{h−1})`` leaf-count bound for the round-h
    tree.
    """
    if length < 1:
        return 0
    if allow_repetitions:
        return n ** (length - 1)
    count = 1
    for i in range(1, length):
        remaining = n - i
        if remaining <= 0:
            return 0
        count *= remaining
    return count


def corresponding_processor(seq: Sequence[ProcessorId]) -> ProcessorId:
    """The processor *corresponding to* a node: the last name in the sequence."""
    if not seq:
        raise ValueError("empty sequence has no corresponding processor")
    return seq[-1]


def strict_prefixes(seq: Sequence[ProcessorId]) -> Iterator[LabelSequence]:
    """Yield every strict prefix of *seq* (shortest first)."""
    seq = tuple(seq)
    for i in range(1, len(seq)):
        yield seq[:i]


def is_prefix(prefix: Sequence[ProcessorId], seq: Sequence[ProcessorId]) -> bool:
    """Return ``True`` iff *prefix* is a (not necessarily strict) prefix of *seq*."""
    prefix = tuple(prefix)
    seq = tuple(seq)
    return len(prefix) <= len(seq) and seq[:len(prefix)] == prefix


def all_faulty(seq: Sequence[ProcessorId], faulty: Iterable[ProcessorId]) -> bool:
    """Return ``True`` iff every processor named in *seq* is faulty.

    Used by tests that check the Hidden Fault Lemma and its corollaries, which
    are stated for nodes ``αr`` in which all processors are faulty.
    """
    faulty_set = set(faulty)
    return all(pid in faulty_set for pid in seq)
