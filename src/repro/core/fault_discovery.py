"""The Fault Discovery Rules (Section 3 and Section 4.2 of the paper).

Two rules let a correct processor ``p`` add names to its list ``L_p`` of
processors known to be faulty:

**Fault Discovery Rule (during Information Gathering).**  When the children of
an internal node ``αr`` have just been stored, ``r ∉ L_p`` is added to ``L_p``
if either

* there is no majority value for ``αr`` (no value is stored at a strict
  majority of its children), or
* a majority value exists but values other than it are stored at more than
  ``t − |L_p|`` children of ``αr`` corresponding to processors ``q ∉ L_p``.

**Fault Discovery Rule During Conversion (Algorithm A only).**  The same test
applied to the *converted* values of the children of ``αr`` while a conversion
(``resolve'``) is being computed.

Both rules are sound: as long as ``L_p`` contains only faulty processors and
at most ``t`` processors are faulty, any processor the rules add is faulty
(a correct ``r`` relays a single value which at least ``n − |αr| − t`` correct
children echo, so the majority exists and at most ``t − |L_p|`` unlisted
children deviate).  Because one discovery can enable another within the same
round — masking a newly discovered processor changes other nodes' child
values — the implementation iterates discovery to a fixpoint; the paper leaves
the order unspecified and the fixpoint only ever adds provably faulty names.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence, Set

from .sequences import (LabelSequence, ProcessorId, SequenceIndex,
                        corresponding_processor)
from .tree import MISSING, FlatEIGTree, InfoGatheringTree
from .values import DEFAULT_VALUE, Value
from ..runtime.metrics import ComputationMeter


def majority_among_children(values: Sequence[Value]):
    """Return ``(majority_value, counter)`` for a list of child values.

    ``majority_value`` is ``None`` when no value is held by a strict majority
    of the children (the population is the full child count, as in the paper's
    definition of *majority value for β*).
    """
    counter = Counter(values)
    if not values:
        return None, counter
    value, count = counter.most_common(1)[0]
    if count * 2 > len(values):
        return value, counter
    return None, counter


def node_triggers_discovery(child_values: Dict[ProcessorId, Value],
                            suspects: Set[ProcessorId],
                            t: int) -> bool:
    """Evaluate the two conditions of the Fault Discovery Rule for one node.

    ``child_values`` maps the child label ``q`` to the value stored (or
    converted) at ``αrq``; ``suspects`` is the current ``L_p``.
    """
    values = list(child_values.values())
    majority, _counter = majority_among_children(values)
    if majority is None:
        return True
    budget = t - len(suspects)
    deviating_unlisted = sum(
        1 for q, value in child_values.items()
        if q not in suspects and value != majority)
    return deviating_unlisted > budget


def discover_at_level(tree: InfoGatheringTree, level: int,
                      suspects: Set[ProcessorId], t: int,
                      meter: ComputationMeter = None) -> Set[ProcessorId]:
    """Apply the Fault Discovery Rule to every internal node whose children
    live at *level* of *tree* (a single pass, no masking).

    Returns the set of newly discovered processors (not yet added to
    *suspects*; the caller owns the update so it can interleave masking).
    """
    discovered: Set[ProcessorId] = set()
    if level < 2:
        return discovered
    for parent in tree.level_sequences(level - 1):
        r = corresponding_processor(parent)
        if r in suspects or r in discovered:
            continue
        child_values = {
            child: tree.value(parent + (child,))
            for child in tree.child_labels(parent)
        }
        if meter is not None:
            meter.charge(len(child_values))
        if node_triggers_discovery(child_values, suspects, t):
            discovered.add(r)
    return discovered


def window_majority(window: List[Value], branch: int):
    """The strict-majority value of a child window, or ``None``.

    At most one value can hold a strict majority, so scanning the distinct
    values with C-speed ``list.count`` is equivalent to the reference
    ``Counter.most_common`` check while allocating no per-node counter.
    """
    # repro-lint: waive[determinism/set-iteration] -- at most one value
    # can hold a strict majority, so scan order cannot change the result
    for value in set(window):
        if 2 * window.count(value) > branch:
            return value
    return None


def discover_at_level_flat(tree: FlatEIGTree, level: int,
                           suspects: Set[ProcessorId], t: int,
                           meter: ComputationMeter = None) -> Set[ProcessorId]:
    """Flat-buffer counterpart of :func:`discover_at_level`.

    Operates directly on the level's value buffer and the interned child
    tables: the children of parent ``i`` are the contiguous slice
    ``[i·b, (i+1)·b)`` and their labels come from the shared index, so no
    per-node dictionary or tuple key is built.  Charges the meter in bulk
    with the reference totals (two units per child of every examined parent).
    """
    discovered: Set[ProcessorId] = set()
    if level < 2 or level > tree.num_levels:
        return discovered
    index = tree.index
    child_buffer = tree.raw_level(level)
    parent_buffer = tree.raw_level(level - 1)
    parent_labels = index.last_labels(level - 1)
    child_labels_flat = index.last_labels(level)
    branch = index.branch(level - 1)
    budget = t - len(suspects)
    charge = 0
    cleaned = child_buffer
    if MISSING in child_buffer:
        cleaned = [DEFAULT_VALUE if v is MISSING else v for v in child_buffer]
    single_value = len(set(cleaned)) == 1
    for i in range(index.level_size(level - 1)):
        if parent_buffer[i] is MISSING:
            continue
        r = parent_labels[i]
        if r in suspects or r in discovered:
            continue
        charge += 2 * branch
        if single_value:
            # One distinct value ⇒ it is the majority and nothing deviates
            # (still triggers when the budget went negative, as the spec does).
            if budget < 0:
                discovered.add(r)
            continue
        base = i * branch
        window = cleaned[base:base + branch]
        majority = window_majority(window, branch)
        if majority is None:
            discovered.add(r)
            continue
        deviating = 0
        for offset in range(branch):
            if (window[offset] != majority
                    and child_labels_flat[base + offset] not in suspects):
                deviating += 1
        if deviating > budget:
            discovered.add(r)
    if meter is not None:
        meter.charge(charge)
    return discovered


# ---------------------------------------------------------------------------
# The numpy engine's discovery: one bincount majority vote per level
# ---------------------------------------------------------------------------

def _window_triggers_numpy(np, child_codes, parents_size: int, branch: int,
                           child_labels, suspects: Set[ProcessorId],
                           budget: int, n: int, num_codes: int):
    """Per-parent boolean: does the Fault Discovery Rule fire on this window?

    One ``bincount`` over offset codes tallies every parent's child window at
    once; a window triggers when no code holds a strict majority of the
    branch, or when more than *budget* children outside *suspects* deviate
    from the majority.  (A strict majority is unique, so the argmax tie-break
    never matters.)
    """
    from .npsupport import strict_majority, vote_windows, window_tallies
    mat = vote_windows(child_codes, parents_size, branch)
    best, has_majority = strict_majority(window_tallies(mat, num_codes),
                                         branch)
    suspect_lut = np.zeros(n, dtype=bool)
    if suspects:
        suspect_lut[list(suspects)] = True
    unlisted = ~suspect_lut[child_labels.reshape(parents_size, branch)]
    deviating = ((mat != best[:, None]) & unlisted).sum(axis=1)
    return ~has_majority | (deviating > budget)


def _charge_examined_parents(triggers, ids, discovered: Set[ProcessorId],
                             label: ProcessorId) -> int:
    """Replicate the reference pass's early-skip accounting for one label.

    The reference scans parents in node-id order and skips a parent once its
    corresponding processor is already discovered, so for each label only the
    parents up to (and including) the first triggering one are examined —
    i.e. charged.  *ids* must be ascending (the index tables are built in
    node-id order).  Returns the examined count; updates *discovered*.
    """
    fired = triggers[ids]
    if fired.any():
        first = ids[int(fired.argmax())]
        discovered.add(int(label))
        return int((ids <= first).sum())
    return int(ids.size)


def _scan_parent_labels(index: SequenceIndex, parent_level: int, triggers,
                        present, suspects: Set[ProcessorId],
                        discovered: Set[ProcessorId],
                        charge_per_parent: int) -> int:
    """One label scan over precomputed per-parent *triggers*.

    The per-label half of every vectorized discovery pass, shared by the
    per-processor kernels and the batched run executor: walks the (≤ n)
    sender labels of *parent_level*, skips suspects and already-discovered
    labels, optionally filters to *present* parents, and applies the
    reference early-skip charge accounting.  Updates *discovered* in place
    and returns the meter charge.
    """
    charge = 0
    for label, ids in index.ids_by_label_np(parent_level).items():
        if label in suspects or label in discovered:
            continue
        if present is not None:
            ids = ids[present[ids]]
            if ids.size == 0:
                continue
        charge += charge_per_parent * _charge_examined_parents(
            triggers, ids, discovered, label)
    return charge


def _scan_fired_labels(index: SequenceIndex, parent_level: int, fired_ids,
                       suspects: Set[ProcessorId],
                       discovered: Set[ProcessorId],
                       charge_per_parent: int) -> int:
    """The label scan of :func:`_scan_parent_labels` driven by fired ids.

    Equivalent to the numpy scan when every parent is present (the batched
    executor's invariant — its gathers store whole levels), but costs
    ``O(|fired| + labels)`` python steps instead of several ndarray
    operations per label: *fired_ids* are the ascending parent ids whose
    window triggered; a label is discovered at its first fired id and charged
    for the ids up to (and including) it, all others are charged in full.
    """
    from bisect import bisect_right
    first_fired: Dict[ProcessorId, int] = {}
    labels = index.last_labels(parent_level)
    for parent_id in fired_ids:
        label = labels[parent_id]
        if label not in first_fired:
            first_fired[label] = parent_id
    charge = 0
    for label, ids in index.ids_by_label_py(parent_level).items():
        if label in suspects or label in discovered:
            continue
        first = first_fired.get(label)
        if first is None:
            charge += charge_per_parent * len(ids)
        else:
            discovered.add(label)
            charge += charge_per_parent * bisect_right(ids, first)
    return charge


def _fired_ids_python(child_rows, parents_size: int, branch: int, labels,
                      suspect_sets, budgets) -> List[List[int]]:
    """Fired parent ids per participant, computed scalar for tiny levels.

    Same decision as :func:`batched_window_triggers` (a window fires when no
    strict majority exists or more than *budget* unlisted children deviate),
    evaluated with the fast engine's :func:`window_majority` over plain
    lists — for a handful of windows that beats a dozen ndarray kernels.
    """
    fired: List[List[int]] = []
    for a, row in enumerate(child_rows):
        suspects = suspect_sets[a]
        budget = budgets[a]
        row_fired: List[int] = []
        for w in range(parents_size):
            base = w * branch
            window = row[base:base + branch]
            majority = window_majority(window, branch)
            if majority is None:
                row_fired.append(w)
                continue
            deviating = 0
            for offset in range(branch):
                if (window[offset] != majority
                        and labels[base + offset] not in suspects):
                    deviating += 1
            if deviating > budget:
                row_fired.append(w)
        fired.append(row_fired)
    return fired


def quiet_scan_charge(index: SequenceIndex, parent_level: int,
                      parents_size: int, skip_labels,
                      charge_per_parent: int) -> int:
    """The meter charge of a label scan in which no window fired.

    Exactly what :func:`_scan_fired_labels` would bill — every parent whose
    label is not skipped, in full — computed in ``O(|skip_labels|)`` from the
    interned per-label id lists.  Shared by both batched discovery passes so
    the reference charge accounting lives in one place.
    """
    ids_by_label = index.ids_by_label_py(parent_level)
    skipped = sum(len(ids_by_label.get(label, ())) for label in skip_labels)
    return charge_per_parent * (parents_size - skipped)


def batched_fired_ids(child_stacks, parents_size: int, branch: int,
                      index: SequenceIndex, child_level: int,
                      suspect_sets, budgets,
                      num_codes: int) -> List[List[int]]:
    """Fired parent ids per participant for one stacked level.

    Dispatches between the vectorized trigger kernel
    (:func:`batched_window_triggers`) and the scalar tiny-level path; either
    way the result feeds :func:`_scan_fired_labels`, so discovery decisions
    and meter charges are one shared implementation.
    """
    from .npsupport import SMALL_KERNEL_ELEMENTS, require_numpy
    np = require_numpy()
    count = child_stacks.shape[0]
    if child_stacks.size <= SMALL_KERNEL_ELEMENTS:
        return _fired_ids_python(child_stacks.tolist(), parents_size, branch,
                                 index.last_labels(child_level),
                                 suspect_sets, budgets)
    triggers = batched_window_triggers(child_stacks, parents_size, branch,
                                       index.slots_np(child_level),
                                       suspect_sets,
                                       np.asarray(budgets, dtype=np.int64),
                                       num_codes)
    fired: List[List[int]] = [[] for _ in range(count)]
    for row_index in np.flatnonzero(triggers.any(axis=1)).tolist():
        fired[row_index] = np.flatnonzero(triggers[row_index]).tolist()
    return fired


def batched_window_triggers(child_stacks, parents_size: int, branch: int,
                            child_slots, suspect_sets, budgets,
                            num_codes: int):
    """Per-``(participant, parent)`` Fault Discovery triggers for a whole run.

    2-D twin of :func:`_window_triggers_numpy`: *child_stacks* is the
    ``(participants, level_size)`` stack of one level (no ``MISSING_CODE``
    entries — the batched executor stores whole levels), *child_slots* the
    child level's ``slots_np`` table, *suspect_sets* each participant's
    ``L_p``, and *budgets* the per-participant ``t − |L_p|``.  One
    ``bincount`` over the ``(participants · parents, branch)`` reshape
    tallies every window of every participant at once; the unlisted-deviation
    count is derived from the tallies (``branch − best's tally``) minus a
    per-suspect-label slot fixup, avoiding any ``(participants, parents,
    branch)`` temporary.
    """
    from .npsupport import require_numpy, window_tallies
    np = require_numpy()
    rows = child_stacks.shape[0]
    tallies = window_tallies(
        child_stacks.reshape(rows * parents_size, branch), num_codes)
    best = tallies.argmax(axis=1)
    best_count = np.take_along_axis(tallies, best[:, None], axis=1)[:, 0]
    has_majority = (2 * best_count > branch).reshape(rows, parents_size)
    # All deviating children first; then subtract each suspect child that
    # deviates from its window's top code (a strict majority is unique, so
    # the argmax tie-break never affects triggering windows).
    deviating = (branch - best_count).reshape(rows, parents_size)
    best = best.reshape(rows, parents_size)
    for row_index, suspects in enumerate(suspect_sets):
        if not suspects:
            continue
        codes = child_stacks[row_index]
        dev = deviating[row_index]
        top = best[row_index]
        for label in suspects:
            entry = child_slots.get(label)
            if entry is None:
                continue
            slots, parents = entry
            # Each parent has at most one child per label, so the fancy
            # in-place subtract sees unique indices.
            dev[parents] -= codes[slots] != top[parents]
    return ~has_majority | (deviating > budgets[:, None])


def discover_at_level_numpy(tree, level: int,
                            suspects: Set[ProcessorId], t: int,
                            meter: ComputationMeter = None) -> Set[ProcessorId]:
    """ndarray counterpart of :func:`discover_at_level_flat`.

    One vectorized majority vote over the ``(parents, branch)`` reshape of the
    level's code buffer replaces the per-node Python loop; only the
    charge bookkeeping (a loop over the ≤ n sender labels) stays scalar.
    Decisions, discoveries and meter totals are identical to both other
    engines.
    """
    from .npsupport import (DEFAULT_CODE, MISSING_CODE, VALUE_CODEC,
                            require_numpy)
    np = require_numpy()
    discovered: Set[ProcessorId] = set()
    if level < 2 or level > tree.num_levels:
        return discovered
    index = tree.index
    child_codes = tree.raw_level(level)
    parent_codes = tree.raw_level(level - 1)
    branch = index.branch(level - 1)
    parents_size = index.level_size(level - 1)
    budget = t - len(suspects)
    cleaned = np.where(child_codes == MISSING_CODE, DEFAULT_CODE, child_codes)
    triggers = _window_triggers_numpy(
        np, cleaned, parents_size, branch, index.last_labels_np(level),
        suspects, budget, tree.n, len(VALUE_CODEC))
    present = parent_codes != MISSING_CODE
    charge = _scan_parent_labels(index, level - 1, triggers, present,
                                 suspects, discovered, 2 * branch)
    if meter is not None:
        meter.charge(charge)
    return discovered


def discover_during_conversion_numpy(index: SequenceIndex,
                                     converted_levels,
                                     num_levels: int,
                                     suspects: Set[ProcessorId], t: int,
                                     meter: ComputationMeter = None
                                     ) -> Set[ProcessorId]:
    """ndarray counterpart of :func:`discover_during_conversion_flat`.

    ``converted_levels`` is the output of
    :func:`repro.core.resolve.numpy_resolve_levels` (code arrays).  A label
    discovered at one level is skipped — and not charged — at every deeper
    level, exactly like the scalar passes.
    """
    from .npsupport import VALUE_CODEC, require_numpy
    np = require_numpy()
    discovered: Set[ProcessorId] = set()
    budget = t - len(suspects)
    charge = 0
    for level in range(1, num_levels):
        branch = index.branch(level)
        parents_size = index.level_size(level)
        triggers = _window_triggers_numpy(
            np, converted_levels[level], parents_size, branch,
            index.last_labels_np(level + 1), suspects, budget,
            index.n, len(VALUE_CODEC))
        charge += _scan_parent_labels(index, level, triggers, None, suspects,
                                      discovered, branch)
    if meter is not None:
        meter.charge(charge)
    return discovered


def discover_during_conversion_batched(index: SequenceIndex,
                                       converted_stacks,
                                       num_levels: int,
                                       suspect_sets: Sequence[Set[ProcessorId]],
                                       t: int,
                                       meters: Sequence[ComputationMeter]
                                       ) -> List[Set[ProcessorId]]:
    """Whole-run counterpart of :func:`discover_during_conversion_numpy`.

    *converted_stacks* is the output of
    :func:`repro.core.resolve.batched_resolve_levels` (one
    ``(participants, level_size)`` code stack per level); *suspect_sets* holds
    each participant's ``L_p`` at conversion time.  One 2-D trigger kernel per
    level serves every participant; the per-label scan — and therefore every
    decision and meter charge — is the per-processor pass verbatim, row by
    row.
    """
    from .npsupport import VALUE_CODEC
    count = len(suspect_sets)
    discovered: List[Set[ProcessorId]] = [set() for _ in range(count)]
    budgets = [t - len(suspects) for suspects in suspect_sets]
    charges = [0] * count
    num_codes = len(VALUE_CODEC)
    for level in range(1, num_levels):
        branch = index.branch(level)
        parents_size = index.level_size(level)
        fired = batched_fired_ids(
            converted_stacks[level], parents_size, branch, index, level + 1,
            suspect_sets, budgets, num_codes)
        for i in range(count):
            if not fired[i]:
                charges[i] += quiet_scan_charge(
                    index, level, parents_size,
                    suspect_sets[i] | discovered[i], branch)
                continue
            charges[i] += _scan_fired_labels(
                index, level, fired[i],
                suspect_sets[i], discovered[i], branch)
    for i, meter in enumerate(meters):
        meter.charge(charges[i])
    return discovered


def discover_during_conversion_flat(index: SequenceIndex,
                                    converted_levels: List[List[Value]],
                                    num_levels: int,
                                    suspects: Set[ProcessorId], t: int,
                                    meter: ComputationMeter = None
                                    ) -> Set[ProcessorId]:
    """Flat-buffer counterpart of :func:`discover_during_conversion`.

    ``converted_levels`` is the output of
    :func:`repro.core.resolve.flat_resolve_levels` (``converted_levels[ℓ-1]``
    holds the converted values of level ``ℓ``).
    """
    discovered: Set[ProcessorId] = set()
    budget = t - len(suspects)
    charge = 0
    for level in range(1, num_levels):
        parent_labels = index.last_labels(level)
        child_values = converted_levels[level]
        child_labels_flat = index.last_labels(level + 1)
        branch = index.branch(level)
        single_value = len(set(child_values)) == 1
        for i in range(index.level_size(level)):
            r = parent_labels[i]
            if r in suspects or r in discovered:
                continue
            charge += branch
            if single_value:
                if budget < 0:
                    discovered.add(r)
                continue
            base = i * branch
            window = child_values[base:base + branch]
            majority = window_majority(window, branch)
            if majority is None:
                discovered.add(r)
                continue
            deviating = 0
            for offset in range(branch):
                if (window[offset] != majority
                        and child_labels_flat[base + offset] not in suspects):
                    deviating += 1
            if deviating > budget:
                discovered.add(r)
    if meter is not None:
        meter.charge(charge)
    return discovered


def discover_during_conversion(tree: InfoGatheringTree,
                               converted: Dict[LabelSequence, Value],
                               suspects: Set[ProcessorId], t: int,
                               meter: ComputationMeter = None) -> Set[ProcessorId]:
    """The Fault Discovery Rule During Conversion (Algorithm A).

    *converted* maps every node of the tree to its converted value (the output
    of :func:`repro.core.resolve.resolve_all`).  Every internal node ``αr``
    that is not the root's proxy for the source... — precisely, every internal
    node — is examined using the converted values of its children.
    """
    discovered: Set[ProcessorId] = set()
    num_levels = tree.num_levels
    for level in range(1, num_levels):
        for parent in tree.level_sequences(level):
            r = corresponding_processor(parent)
            if r in suspects or r in discovered:
                continue
            child_values = {
                child: converted[parent + (child,)]
                for child in tree.child_labels(parent)
                if parent + (child,) in converted
            }
            if not child_values:
                continue
            if meter is not None:
                meter.charge(len(child_values))
            if node_triggers_discovery(child_values, suspects, t):
                discovered.add(r)
    return discovered


class FaultTracker:
    """The ``L_p`` list of one correct processor plus its discovery history.

    The tracker records *when* each processor was discovered (round number)
    so that experiments can reproduce the paper's per-block progress argument
    ("each block without a common frontier globally detects at least ``b − 1``
    new faults").
    """

    def __init__(self, owner: ProcessorId, t: int) -> None:
        self.owner = owner
        self.t = t
        self._suspects: Set[ProcessorId] = set()
        self._discovered_in_round: Dict[ProcessorId, int] = {}

    # -- membership --------------------------------------------------------
    @property
    def suspects(self) -> Set[ProcessorId]:
        return set(self._suspects)

    def __contains__(self, pid: object) -> bool:
        return pid in self._suspects

    def __len__(self) -> int:
        return len(self._suspects)

    def add(self, pid: ProcessorId, round_number: int) -> bool:
        """Record *pid* as faulty (idempotent); returns True if newly added."""
        if pid in self._suspects:
            return False
        self._suspects.add(pid)
        self._discovered_in_round[pid] = round_number
        return True

    def add_all(self, pids: Iterable[ProcessorId], round_number: int) -> List[ProcessorId]:
        return [pid for pid in pids if self.add(pid, round_number)]

    def discovery_round(self, pid: ProcessorId) -> int:
        return self._discovered_in_round[pid]

    def discovered_by_round(self, round_number: int) -> Set[ProcessorId]:
        return {pid for pid, rnd in self._discovered_in_round.items()
                if rnd <= round_number}

    def history(self) -> Dict[ProcessorId, int]:
        return dict(self._discovered_in_round)
