"""The Fault Discovery Rules (Section 3 and Section 4.2 of the paper).

Two rules let a correct processor ``p`` add names to its list ``L_p`` of
processors known to be faulty:

**Fault Discovery Rule (during Information Gathering).**  When the children of
an internal node ``αr`` have just been stored, ``r ∉ L_p`` is added to ``L_p``
if either

* there is no majority value for ``αr`` (no value is stored at a strict
  majority of its children), or
* a majority value exists but values other than it are stored at more than
  ``t − |L_p|`` children of ``αr`` corresponding to processors ``q ∉ L_p``.

**Fault Discovery Rule During Conversion (Algorithm A only).**  The same test
applied to the *converted* values of the children of ``αr`` while a conversion
(``resolve'``) is being computed.

Both rules are sound: as long as ``L_p`` contains only faulty processors and
at most ``t`` processors are faulty, any processor the rules add is faulty
(a correct ``r`` relays a single value which at least ``n − |αr| − t`` correct
children echo, so the majority exists and at most ``t − |L_p|`` unlisted
children deviate).  Because one discovery can enable another within the same
round — masking a newly discovered processor changes other nodes' child
values — the implementation iterates discovery to a fixpoint; the paper leaves
the order unspecified and the fixpoint only ever adds provably faulty names.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence, Set

from .sequences import (LabelSequence, ProcessorId, SequenceIndex,
                        corresponding_processor)
from .tree import MISSING, FlatEIGTree, InfoGatheringTree
from .values import DEFAULT_VALUE, Value
from ..runtime.metrics import ComputationMeter


def majority_among_children(values: Sequence[Value]):
    """Return ``(majority_value, counter)`` for a list of child values.

    ``majority_value`` is ``None`` when no value is held by a strict majority
    of the children (the population is the full child count, as in the paper's
    definition of *majority value for β*).
    """
    counter = Counter(values)
    if not values:
        return None, counter
    value, count = counter.most_common(1)[0]
    if count * 2 > len(values):
        return value, counter
    return None, counter


def node_triggers_discovery(child_values: Dict[ProcessorId, Value],
                            suspects: Set[ProcessorId],
                            t: int) -> bool:
    """Evaluate the two conditions of the Fault Discovery Rule for one node.

    ``child_values`` maps the child label ``q`` to the value stored (or
    converted) at ``αrq``; ``suspects`` is the current ``L_p``.
    """
    values = list(child_values.values())
    majority, _counter = majority_among_children(values)
    if majority is None:
        return True
    budget = t - len(suspects)
    deviating_unlisted = sum(
        1 for q, value in child_values.items()
        if q not in suspects and value != majority)
    return deviating_unlisted > budget


def discover_at_level(tree: InfoGatheringTree, level: int,
                      suspects: Set[ProcessorId], t: int,
                      meter: ComputationMeter = None) -> Set[ProcessorId]:
    """Apply the Fault Discovery Rule to every internal node whose children
    live at *level* of *tree* (a single pass, no masking).

    Returns the set of newly discovered processors (not yet added to
    *suspects*; the caller owns the update so it can interleave masking).
    """
    discovered: Set[ProcessorId] = set()
    if level < 2:
        return discovered
    for parent in tree.level_sequences(level - 1):
        r = corresponding_processor(parent)
        if r in suspects or r in discovered:
            continue
        child_values = {
            child: tree.value(parent + (child,))
            for child in tree.child_labels(parent)
        }
        if meter is not None:
            meter.charge(len(child_values))
        if node_triggers_discovery(child_values, suspects, t):
            discovered.add(r)
    return discovered


def window_majority(window: List[Value], branch: int):
    """The strict-majority value of a child window, or ``None``.

    At most one value can hold a strict majority, so scanning the distinct
    values with C-speed ``list.count`` is equivalent to the reference
    ``Counter.most_common`` check while allocating no per-node counter.
    """
    for value in set(window):
        if 2 * window.count(value) > branch:
            return value
    return None


def discover_at_level_flat(tree: FlatEIGTree, level: int,
                           suspects: Set[ProcessorId], t: int,
                           meter: ComputationMeter = None) -> Set[ProcessorId]:
    """Flat-buffer counterpart of :func:`discover_at_level`.

    Operates directly on the level's value buffer and the interned child
    tables: the children of parent ``i`` are the contiguous slice
    ``[i·b, (i+1)·b)`` and their labels come from the shared index, so no
    per-node dictionary or tuple key is built.  Charges the meter in bulk
    with the reference totals (two units per child of every examined parent).
    """
    discovered: Set[ProcessorId] = set()
    if level < 2 or level > tree.num_levels:
        return discovered
    index = tree.index
    child_buffer = tree.raw_level(level)
    parent_buffer = tree.raw_level(level - 1)
    parent_labels = index.last_labels(level - 1)
    child_labels_flat = index.last_labels(level)
    branch = index.branch(level - 1)
    budget = t - len(suspects)
    charge = 0
    cleaned = child_buffer
    if MISSING in child_buffer:
        cleaned = [DEFAULT_VALUE if v is MISSING else v for v in child_buffer]
    single_value = len(set(cleaned)) == 1
    for i in range(index.level_size(level - 1)):
        if parent_buffer[i] is MISSING:
            continue
        r = parent_labels[i]
        if r in suspects or r in discovered:
            continue
        charge += 2 * branch
        if single_value:
            # One distinct value ⇒ it is the majority and nothing deviates
            # (still triggers when the budget went negative, as the spec does).
            if budget < 0:
                discovered.add(r)
            continue
        base = i * branch
        window = cleaned[base:base + branch]
        majority = window_majority(window, branch)
        if majority is None:
            discovered.add(r)
            continue
        deviating = 0
        for offset in range(branch):
            if (window[offset] != majority
                    and child_labels_flat[base + offset] not in suspects):
                deviating += 1
        if deviating > budget:
            discovered.add(r)
    if meter is not None:
        meter.charge(charge)
    return discovered


# ---------------------------------------------------------------------------
# The numpy engine's discovery: one bincount majority vote per level
# ---------------------------------------------------------------------------

def _window_triggers_numpy(np, child_codes, parents_size: int, branch: int,
                           child_labels, suspects: Set[ProcessorId],
                           budget: int, n: int, num_codes: int):
    """Per-parent boolean: does the Fault Discovery Rule fire on this window?

    One ``bincount`` over offset codes tallies every parent's child window at
    once; a window triggers when no code holds a strict majority of the
    branch, or when more than *budget* children outside *suspects* deviate
    from the majority.  (A strict majority is unique, so the argmax tie-break
    never matters.)
    """
    from .npsupport import strict_majority, vote_windows, window_tallies
    mat = vote_windows(child_codes, parents_size, branch)
    best, has_majority = strict_majority(window_tallies(mat, num_codes),
                                         branch)
    suspect_lut = np.zeros(n, dtype=bool)
    if suspects:
        suspect_lut[list(suspects)] = True
    unlisted = ~suspect_lut[child_labels.reshape(parents_size, branch)]
    deviating = ((mat != best[:, None]) & unlisted).sum(axis=1)
    return ~has_majority | (deviating > budget)


def _charge_examined_parents(triggers, ids, discovered: Set[ProcessorId],
                             label: ProcessorId) -> int:
    """Replicate the reference pass's early-skip accounting for one label.

    The reference scans parents in node-id order and skips a parent once its
    corresponding processor is already discovered, so for each label only the
    parents up to (and including) the first triggering one are examined —
    i.e. charged.  *ids* must be ascending (the index tables are built in
    node-id order).  Returns the examined count; updates *discovered*.
    """
    fired = triggers[ids]
    if fired.any():
        first = ids[int(fired.argmax())]
        discovered.add(int(label))
        return int((ids <= first).sum())
    return int(ids.size)


def discover_at_level_numpy(tree, level: int,
                            suspects: Set[ProcessorId], t: int,
                            meter: ComputationMeter = None) -> Set[ProcessorId]:
    """ndarray counterpart of :func:`discover_at_level_flat`.

    One vectorized majority vote over the ``(parents, branch)`` reshape of the
    level's code buffer replaces the per-node Python loop; only the
    charge bookkeeping (a loop over the ≤ n sender labels) stays scalar.
    Decisions, discoveries and meter totals are identical to both other
    engines.
    """
    from .npsupport import (DEFAULT_CODE, MISSING_CODE, VALUE_CODEC,
                            require_numpy)
    np = require_numpy()
    discovered: Set[ProcessorId] = set()
    if level < 2 or level > tree.num_levels:
        return discovered
    index = tree.index
    child_codes = tree.raw_level(level)
    parent_codes = tree.raw_level(level - 1)
    branch = index.branch(level - 1)
    parents_size = index.level_size(level - 1)
    budget = t - len(suspects)
    cleaned = np.where(child_codes == MISSING_CODE, DEFAULT_CODE, child_codes)
    triggers = _window_triggers_numpy(
        np, cleaned, parents_size, branch, index.last_labels_np(level),
        suspects, budget, tree.n, len(VALUE_CODEC))
    present = parent_codes != MISSING_CODE
    charge = 0
    for label, ids in index.ids_by_label_np(level - 1).items():
        if label in suspects:
            continue
        ids_present = ids[present[ids]]
        if ids_present.size == 0:
            continue
        charge += 2 * branch * _charge_examined_parents(
            triggers, ids_present, discovered, label)
    if meter is not None:
        meter.charge(charge)
    return discovered


def discover_during_conversion_numpy(index: SequenceIndex,
                                     converted_levels,
                                     num_levels: int,
                                     suspects: Set[ProcessorId], t: int,
                                     meter: ComputationMeter = None
                                     ) -> Set[ProcessorId]:
    """ndarray counterpart of :func:`discover_during_conversion_flat`.

    ``converted_levels`` is the output of
    :func:`repro.core.resolve.numpy_resolve_levels` (code arrays).  A label
    discovered at one level is skipped — and not charged — at every deeper
    level, exactly like the scalar passes.
    """
    from .npsupport import VALUE_CODEC, require_numpy
    np = require_numpy()
    discovered: Set[ProcessorId] = set()
    budget = t - len(suspects)
    charge = 0
    for level in range(1, num_levels):
        branch = index.branch(level)
        parents_size = index.level_size(level)
        triggers = _window_triggers_numpy(
            np, converted_levels[level], parents_size, branch,
            index.last_labels_np(level + 1), suspects, budget,
            index.n, len(VALUE_CODEC))
        for label, ids in index.ids_by_label_np(level).items():
            if label in suspects or label in discovered:
                continue
            charge += branch * _charge_examined_parents(
                triggers, ids, discovered, label)
    if meter is not None:
        meter.charge(charge)
    return discovered


def discover_during_conversion_flat(index: SequenceIndex,
                                    converted_levels: List[List[Value]],
                                    num_levels: int,
                                    suspects: Set[ProcessorId], t: int,
                                    meter: ComputationMeter = None
                                    ) -> Set[ProcessorId]:
    """Flat-buffer counterpart of :func:`discover_during_conversion`.

    ``converted_levels`` is the output of
    :func:`repro.core.resolve.flat_resolve_levels` (``converted_levels[ℓ-1]``
    holds the converted values of level ``ℓ``).
    """
    discovered: Set[ProcessorId] = set()
    budget = t - len(suspects)
    charge = 0
    for level in range(1, num_levels):
        parent_labels = index.last_labels(level)
        child_values = converted_levels[level]
        child_labels_flat = index.last_labels(level + 1)
        branch = index.branch(level)
        single_value = len(set(child_values)) == 1
        for i in range(index.level_size(level)):
            r = parent_labels[i]
            if r in suspects or r in discovered:
                continue
            charge += branch
            if single_value:
                if budget < 0:
                    discovered.add(r)
                continue
            base = i * branch
            window = child_values[base:base + branch]
            majority = window_majority(window, branch)
            if majority is None:
                discovered.add(r)
                continue
            deviating = 0
            for offset in range(branch):
                if (window[offset] != majority
                        and child_labels_flat[base + offset] not in suspects):
                    deviating += 1
            if deviating > budget:
                discovered.add(r)
    if meter is not None:
        meter.charge(charge)
    return discovered


def discover_during_conversion(tree: InfoGatheringTree,
                               converted: Dict[LabelSequence, Value],
                               suspects: Set[ProcessorId], t: int,
                               meter: ComputationMeter = None) -> Set[ProcessorId]:
    """The Fault Discovery Rule During Conversion (Algorithm A).

    *converted* maps every node of the tree to its converted value (the output
    of :func:`repro.core.resolve.resolve_all`).  Every internal node ``αr``
    that is not the root's proxy for the source... — precisely, every internal
    node — is examined using the converted values of its children.
    """
    discovered: Set[ProcessorId] = set()
    num_levels = tree.num_levels
    for level in range(1, num_levels):
        for parent in tree.level_sequences(level):
            r = corresponding_processor(parent)
            if r in suspects or r in discovered:
                continue
            child_values = {
                child: converted[parent + (child,)]
                for child in tree.child_labels(parent)
                if parent + (child,) in converted
            }
            if not child_values:
                continue
            if meter is not None:
                meter.charge(len(child_values))
            if node_triggers_discovery(child_values, suspects, t):
                discovered.add(r)
    return discovered


class FaultTracker:
    """The ``L_p`` list of one correct processor plus its discovery history.

    The tracker records *when* each processor was discovered (round number)
    so that experiments can reproduce the paper's per-block progress argument
    ("each block without a common frontier globally detects at least ``b − 1``
    new faults").
    """

    def __init__(self, owner: ProcessorId, t: int) -> None:
        self.owner = owner
        self.t = t
        self._suspects: Set[ProcessorId] = set()
        self._discovered_in_round: Dict[ProcessorId, int] = {}

    # -- membership --------------------------------------------------------
    @property
    def suspects(self) -> Set[ProcessorId]:
        return set(self._suspects)

    def __contains__(self, pid: object) -> bool:
        return pid in self._suspects

    def __len__(self) -> int:
        return len(self._suspects)

    def add(self, pid: ProcessorId, round_number: int) -> bool:
        """Record *pid* as faulty (idempotent); returns True if newly added."""
        if pid in self._suspects:
            return False
        self._suspects.add(pid)
        self._discovered_in_round[pid] = round_number
        return True

    def add_all(self, pids: Iterable[ProcessorId], round_number: int) -> List[ProcessorId]:
        return [pid for pid in pids if self.add(pid, round_number)]

    def discovery_round(self, pid: ProcessorId) -> int:
        return self._discovered_in_round[pid]

    def discovered_by_round(self, round_number: int) -> Set[ProcessorId]:
        return {pid for pid, rnd in self._discovered_in_round.items()
                if rnd <= round_number}

    def history(self) -> Dict[ProcessorId, int]:
        return dict(self._discovered_in_round)
