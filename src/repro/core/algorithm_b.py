"""Algorithm B (Theorem 3 of the paper).

Resilience ``t_B = ⌊(n − 1) / 4⌋``.  For a block parameter ``1 < b ≤ t``,
Algorithm B(b) is the repeated application of ``shift_{b+1→1}`` (conversion by
``resolve``) to the Exponential Algorithm:

* one initial round (the source's broadcast),
* ``⌊(t − 1)/(b − 1)⌋`` blocks of ``b`` rounds, each ending with
  ``tree(s) := resolve(s)``,
* when ``b − 1`` does not divide ``t − 1``, one final block of
  ``t − (b − 1)⌊(t − 1)/(b − 1)⌋`` rounds,
* decide ``resolve(s)``.

Total: ``t + 1 + ⌊(t − 1)/(b − 1)⌋`` rounds in the worst case (one fewer when
``(b − 1) | (t − 1)``), with messages of ``O(n^b)`` bits and
``O(n^{b+1}(t − 1)/(b − 1))`` local computation.  The correctness argument is
that every block either yields a persistent value (Frontier + Persistence
Lemmas) or globally detects at least ``b − 1`` new faults besides the source
(Corollary 1 to the Hidden Fault Lemma), and masked faults cannot block the
emergence of a persistent value.
"""

from __future__ import annotations

from typing import List

from .protocol import AgreementProtocol, ProtocolConfig, ProtocolSpec
from .sequences import ProcessorId
from .shifting import ShiftSchedule, ShiftingEIGProcessor
from ..runtime.errors import ConfigurationError


def algorithm_b_resilience(n: int) -> int:
    """``t_B = ⌊(n − 1) / 4⌋``."""
    return (n - 1) // 4


def algorithm_b_blocks(t: int, b: int) -> List[int]:
    """Block lengths (after the initial round) of Algorithm B(b).

    ``b = t`` degenerates to the Exponential Algorithm (a single block of
    ``t`` rounds).
    """
    if not 1 < b <= t:
        raise ConfigurationError(
            f"Algorithm B requires 1 < b ≤ t (got b={b}, t={t})")
    full_blocks = (t - 1) // (b - 1)
    remainder = (t - 1) - (b - 1) * full_blocks
    blocks = [b] * full_blocks
    if remainder:
        blocks.append(remainder + 1)
    return blocks


def algorithm_b_rounds(t: int, b: int) -> int:
    """Worst-case rounds of Algorithm B(b): ``1 + Σ block lengths``.

    Equals ``t + 1 + ⌊(t − 1)/(b − 1)⌋`` when ``(b − 1) ∤ (t − 1)`` and one
    fewer otherwise, as in Theorem 3.
    """
    return 1 + sum(algorithm_b_blocks(t, b))


def algorithm_b_max_message_entries(n: int, b: int) -> int:
    """Entries of the largest message: leaves of a ``b``-level tree, ``O(n^b)``."""
    count = 1
    for i in range(1, b):
        count *= max(1, n - i)
    return count


def algorithm_b_schedule(t: int, b: int) -> ShiftSchedule:
    """The :class:`ShiftSchedule` realising Algorithm B(b)."""
    return ShiftSchedule.uniform(algorithm_b_blocks(t, b), "resolve",
                                 conversion_discovery=False)


class AlgorithmBSpec(ProtocolSpec):
    """Protocol spec for Algorithm B with block parameter *b*."""

    def __init__(self, b: int) -> None:
        self.b = b
        self.name = f"algorithm-b(b={b})"

    def validate(self, config: ProtocolConfig) -> None:
        if config.t > algorithm_b_resilience(config.n):
            raise ConfigurationError(
                f"Algorithm B requires n ≥ 4t + 1 (got n={config.n}, t={config.t})")
        if not 1 < self.b <= config.t:
            raise ConfigurationError(
                f"Algorithm B requires 1 < b ≤ t (got b={self.b}, t={config.t})")

    def total_rounds(self, config: ProtocolConfig) -> int:
        return algorithm_b_rounds(config.t, self.b)

    def build(self, pid: ProcessorId, config: ProtocolConfig) -> AgreementProtocol:
        self.validate(config)
        return ShiftingEIGProcessor(
            pid, config, algorithm_b_schedule(config.t, self.b))

    def describe(self) -> str:
        return f"{self.name}: t+1+⌊(t−1)/(b−1)⌋ rounds, O(n^b) bits"
