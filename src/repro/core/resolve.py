"""Data-conversion functions: ``resolve`` and ``resolve'``.

The paper defines two recursive conversion functions applied to (subtrees of)
an Information Gathering Tree:

* ``resolve`` — *recursive majority voting*, used by the Exponential
  Algorithm, Algorithm B, Algorithm C, and the final stages of the hybrid:
  a leaf resolves to its stored value; an internal node resolves to the value
  held by a strict majority of its resolved children, or to the default value
  0 when no majority exists.

* ``resolve'`` — the *threshold* conversion of Algorithm A: a leaf resolves to
  its stored value; an internal node resolves to ``v`` when ``v`` is the
  *unique* value of ``V`` appearing at least ``t + 1`` times among the
  resolved children, and to ``⊥`` (:data:`~repro.core.values.BOTTOM`)
  otherwise.  ``⊥`` never enters the tree; a processor whose final conversion
  yields ``⊥`` adopts the default value as its new preferred value.

Both functions are implemented iteratively (post-order over the subtree) so
that very deep trees never hit Python's recursion limit, and both charge one
computation unit per visited node so the ``O(n^{b+1})``-style local
computation bounds can be validated.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, List, Optional

from .sequences import LabelSequence
from .tree import MISSING, FlatEIGTree, InfoGatheringTree
from .values import BOTTOM, DEFAULT_VALUE, Value, is_bottom

Resolver = Callable[[InfoGatheringTree, LabelSequence], Value]


def majority_value(counter: Counter, population: int) -> Optional[Value]:
    """The value held by a strict majority of *population* slots, if any."""
    if not counter or population <= 0:
        return None
    value, count = counter.most_common(1)[0]
    if count * 2 > population:
        return value
    return None


def _resolved_children(tree: InfoGatheringTree, seq: LabelSequence,
                       cache: Dict[LabelSequence, Value],
                       resolve_leaf_and_combine) -> Value:
    """Post-order evaluation of a conversion function over the subtree at *seq*.

    ``resolve_leaf_and_combine`` is a pair ``(leaf_fn, combine_fn)`` where
    ``leaf_fn(seq)`` resolves a leaf and ``combine_fn(seq, child_values)``
    combines already-resolved children of an internal node.
    """
    leaf_fn, combine_fn = resolve_leaf_and_combine
    stack = [(tuple(seq), False)]
    while stack:
        node, expanded = stack.pop()
        if node in cache:
            continue
        if tree.is_leaf(node):
            cache[node] = leaf_fn(node)
            tree.meter.charge()
            continue
        children = [node + (c,) for c in tree.child_labels(node)]
        if not expanded:
            stack.append((node, True))
            for child in children:
                if child not in cache:
                    stack.append((child, False))
            continue
        child_values = [cache[child] for child in children]
        cache[node] = combine_fn(node, child_values)
        tree.meter.charge(len(children))
    return cache[tuple(seq)]


def resolve(tree: InfoGatheringTree, seq: LabelSequence,
            cache: Optional[Dict[LabelSequence, Value]] = None) -> Value:
    """Recursive majority vote over the subtree rooted at *seq*.

    Returns the stored value for leaves; for internal nodes, the strict
    majority among the resolved children, or :data:`DEFAULT_VALUE` when no
    strict majority exists.
    """
    if cache is None:
        cache = {}

    def leaf_fn(node: LabelSequence) -> Value:
        return tree.value(node)

    def combine_fn(node: LabelSequence, child_values) -> Value:
        majority = majority_value(Counter(child_values), len(child_values))
        return majority if majority is not None else DEFAULT_VALUE

    return _resolved_children(tree, seq, cache, (leaf_fn, combine_fn))


def make_resolve_prime(t: int) -> Resolver:
    """Build the ``resolve'`` conversion function for resilience parameter *t*.

    ``resolve'`` needs to know ``t`` because its internal-node rule is a
    ``t + 1`` threshold rather than a majority.
    """

    def resolve_prime(tree: InfoGatheringTree, seq: LabelSequence,
                      cache: Optional[Dict[LabelSequence, Value]] = None) -> Value:
        if cache is None:
            cache = {}

        def leaf_fn(node: LabelSequence) -> Value:
            return tree.value(node)

        def combine_fn(node: LabelSequence, child_values) -> Value:
            counts = Counter(v for v in child_values if not is_bottom(v))
            winners = [value for value, count in counts.items()
                       if count >= t + 1]
            if len(winners) == 1:
                return winners[0]
            return BOTTOM

        return _resolved_children(tree, seq, cache, (leaf_fn, combine_fn))

    return resolve_prime


def resolve_prime(tree: InfoGatheringTree, seq: LabelSequence, t: int,
                  cache: Optional[Dict[LabelSequence, Value]] = None) -> Value:
    """Convenience wrapper around :func:`make_resolve_prime`."""
    return make_resolve_prime(t)(tree, seq, cache)


# ---------------------------------------------------------------------------
# The fast engine's conversion: one bottom-up pass over flat level buffers
# ---------------------------------------------------------------------------

def flat_resolve_levels(tree: FlatEIGTree, conversion: str,
                        t: int) -> List[List[Value]]:
    """Convert every node of a flat tree in a single bottom-up pass.

    Returns ``levels`` with ``levels[ℓ - 1][i]`` the converted value of the
    node with id ``i`` at level ``ℓ`` — the flat-array equivalent of
    :func:`resolve_all`.  Semantics match the recursive specification exactly
    (leaves resolve to their stored value with the default substituted for
    absent nodes; internal nodes apply majority or the ``t + 1`` threshold to
    the contiguous child slice), but the pass allocates one scratch buffer per
    level, counts majorities with C-speed ``list.count`` over the (typically
    two-element) set of values present in the level, and charges the meter
    once, in bulk, with the same unit total as the reference implementation
    (two units per leaf, one per child of every internal node).
    """
    if conversion not in ("resolve", "resolve_prime"):
        raise ValueError(f"unknown conversion function {conversion!r}")
    height = tree.num_levels
    if height < 1:
        raise KeyError("cannot resolve an empty tree")
    index = tree.index
    leaf_buffer = tree.raw_level(height)
    levels: List[List[Value]] = [[] for _ in range(height)]
    levels[height - 1] = [DEFAULT_VALUE if v is MISSING else v
                          for v in leaf_buffer]
    charge = 2 * len(leaf_buffer)
    majority = conversion == "resolve"
    threshold = t + 1
    for level in range(height - 1, 0, -1):
        children = levels[level]
        branch = index.branch(level)
        size = index.level_size(level)
        out: List[Value] = [DEFAULT_VALUE] * size
        present = set(children)
        if not majority:
            # resolve' counts only non-⊥ values against the threshold; the
            # majority rule keeps every distinct child value as a candidate,
            # exactly like the reference Counter.
            present.discard(BOTTOM)
        charge += size * branch
        if majority:
            for i in range(size):
                base = i * branch
                window = children[base:base + branch]
                for value in present:
                    if 2 * window.count(value) > branch:
                        out[i] = value
                        break
        else:
            for i in range(size):
                base = i * branch
                window = children[base:base + branch]
                winner = BOTTOM
                winners = 0
                for value in present:
                    if window.count(value) >= threshold:
                        winners += 1
                        winner = value
                out[i] = winner if winners == 1 else BOTTOM
        levels[level - 1] = out
    tree.meter.charge(charge)
    return levels


def flat_resolve_root(tree: FlatEIGTree, conversion: str, t: int) -> Value:
    """The converted value of the root of a flat tree (bottom-up pass)."""
    return flat_resolve_levels(tree, conversion, t)[0][0]


# ---------------------------------------------------------------------------
# The numpy engine's conversion: one bincount majority vote per level
# ---------------------------------------------------------------------------

def _vote_level_select(np, windows, branch: int, majority: bool,
                       threshold: int, num_codes: int, dtype):
    """One level's conversion votes: ``windows`` → per-window converted code.

    The select shared by the per-processor and the batched numpy conversions:
    a single ``bincount`` tallies every ``(rows, branch)`` window, then
    ``resolve`` keeps strict majorities (default otherwise) and ``resolve'``
    zeroes the ``⊥`` column and demands a unique ``t + 1``-threshold winner.
    """
    from .npsupport import (BOTTOM_CODE, DEFAULT_CODE, strict_majority,
                            window_tallies)
    tallies = window_tallies(windows, num_codes)
    if majority:
        best, has_majority = strict_majority(tallies, branch)
        out = np.where(has_majority, best, DEFAULT_CODE)
    else:
        tallies[:, BOTTOM_CODE] = 0
        winners = tallies >= threshold
        winner_count = winners.sum(axis=1)
        winner_code = winners.argmax(axis=1)
        out = np.where(winner_count == 1, winner_code, BOTTOM_CODE)
    return out.astype(dtype)


def numpy_resolve_levels(tree, conversion: str, t: int) -> List[object]:
    """Vectorized :func:`flat_resolve_levels` over an ndarray-backed tree.

    Returns ``levels`` with ``levels[ℓ - 1]`` an int **code** ndarray (the
    codes of :data:`~repro.core.npsupport.VALUE_CODEC`; decode the root with
    the codec, or the whole pass with :func:`flat_converted_dict`, which
    accepts code arrays).  Per level the child buffer is reshaped to
    ``(parents, branch)`` and a single ``bincount`` over offset codes yields
    every parent's vote tally at once:

    * ``resolve`` keeps the per-row argmax when it is a strict majority of the
      branch, else the default — a strict majority is unique, so argmax ties
      are irrelevant;
    * ``resolve'`` zeroes the ``⊥`` column and takes the row's value iff
      exactly one code reaches the ``t + 1`` threshold, else ``⊥``.

    Semantics and meter accounting are identical to both other engines (two
    units per leaf, one per child of every internal node, charged in bulk).
    """
    from .npsupport import (DEFAULT_CODE, MISSING_CODE, VALUE_CODEC,
                            require_numpy, vote_windows)
    np = require_numpy()
    if conversion not in ("resolve", "resolve_prime"):
        raise ValueError(f"unknown conversion function {conversion!r}")
    height = tree.num_levels
    if height < 1:
        raise KeyError("cannot resolve an empty tree")
    index = tree.index
    leaf_buffer = tree.raw_level(height)
    levels: List[object] = [None] * height
    levels[height - 1] = np.where(leaf_buffer == MISSING_CODE,
                                  DEFAULT_CODE, leaf_buffer)
    charge = 2 * len(leaf_buffer)
    majority = conversion == "resolve"
    threshold = t + 1
    num_codes = len(VALUE_CODEC)
    for level in range(height - 1, 0, -1):
        children = levels[level]
        branch = index.branch(level)
        size = index.level_size(level)
        charge += size * branch
        levels[level - 1] = _vote_level_select(
            np, vote_windows(children, size, branch), branch, majority,
            threshold, num_codes, children.dtype)
    tree.meter.charge(charge)
    return levels


def batched_resolve_levels(state, conversion: str, t: int):
    """Whole-run conversion: :func:`numpy_resolve_levels` over stacked levels.

    *state* is a :class:`~repro.core.npsupport.BatchedEIGState`; every
    participant's tree is converted at once by reshaping each level stack to
    ``(participants · parents, branch)`` and running the shared vote select —
    one ``bincount`` per level for the entire run.  Returns
    ``(levels, per_participant_charge)`` where ``levels[ℓ - 1]`` is the
    ``(participants, level_size)`` converted code stack of level ``ℓ`` and the
    charge equals what :func:`numpy_resolve_levels` bills one processor (the
    caller charges each participant's meter).
    """
    from .npsupport import (SMALL_KERNEL_ELEMENTS, VALUE_CODEC,
                            require_numpy)
    np = require_numpy()
    if conversion not in ("resolve", "resolve_prime"):
        raise ValueError(f"unknown conversion function {conversion!r}")
    height = state.num_levels
    if height < 1:
        raise KeyError("cannot resolve an empty tree")
    index = state.index
    count = state.count
    # Batched levels are stored whole (the BatchedEIGState invariant), so
    # the leaves resolve to themselves — no MISSING substitution pass.
    leaf_stack = state.raw_stack(height)
    levels: List[object] = [None] * height
    levels[height - 1] = leaf_stack
    charge = 2 * index.level_size(height)
    majority = conversion == "resolve"
    threshold = t + 1
    num_codes = len(VALUE_CODEC)
    for level in range(height - 1, 0, -1):
        children = levels[level]
        branch = index.branch(level)
        size = index.level_size(level)
        charge += size * branch
        if children.size <= SMALL_KERNEL_ELEMENTS:
            levels[level - 1] = np.asarray(
                _vote_level_python(children.tolist(), size, branch, majority,
                                   threshold), dtype=children.dtype)
            continue
        windows = children.reshape(count * size, branch)
        out = _vote_level_select(np, windows, branch, majority, threshold,
                                 num_codes, children.dtype)
        levels[level - 1] = out.reshape(count, size)
    return levels, charge


def _vote_level_python(child_rows, size: int, branch: int, majority: bool,
                       threshold: int):
    """Scalar twin of :func:`_vote_level_select` for tiny stacked levels.

    Same decisions on plain lists of codes: ``resolve`` keeps a strict
    majority (default otherwise, via the fast engine's
    :func:`~repro.core.fault_discovery.window_majority`); ``resolve'``
    demands a unique non-``⊥`` code reaching the threshold.
    """
    from .npsupport import BOTTOM_CODE, DEFAULT_CODE
    from .fault_discovery import window_majority
    out_rows = []
    for row in child_rows:
        out_row = []
        for w in range(size):
            window = row[w * branch:(w + 1) * branch]
            if majority:
                winner = window_majority(window, branch)
                out_row.append(DEFAULT_CODE if winner is None else winner)
                continue
            winner = BOTTOM_CODE
            winners = 0
            # repro-lint: waive[determinism/set-iteration] -- the winner
            # is used only when exactly one code crosses the threshold,
            # so visiting order cannot change the resolved value
            for code in set(window):
                if code != BOTTOM_CODE and window.count(code) >= threshold:
                    winners += 1
                    winner = code
            out_row.append(winner if winners == 1 else BOTTOM_CODE)
        out_rows.append(out_row)
    return out_rows


def numpy_resolve_root(tree, conversion: str, t: int) -> Value:
    """The decoded converted value of the root of an ndarray-backed tree."""
    from .npsupport import VALUE_CODEC
    return VALUE_CODEC.value(int(numpy_resolve_levels(tree, conversion,
                                                      t)[0][0]))


def flat_converted_dict(tree: FlatEIGTree,
                        levels: List[List[Value]]) -> Dict[LabelSequence, Value]:
    """Materialise a :func:`resolve_all`-shaped mapping from flat converted
    levels (used only by slow-path consumers such as lemma tests).  Accepts
    both the fast engine's value lists and the numpy engine's code arrays."""
    converted: Dict[LabelSequence, Value] = {}
    for level, values in enumerate(levels, start=1):
        if not isinstance(values, list):
            from .npsupport import VALUE_CODEC
            values = VALUE_CODEC.decode_buffer(values)
        converted.update(zip(tree.index.sequences(level), values))
    return converted


def converted_root(tree: InfoGatheringTree, conversion: str, t: int) -> Value:
    """Apply the named conversion (``"resolve"`` or ``"resolve_prime"``) to the
    root and map ``⊥`` to the default value, as the protocols do when adopting
    a new preferred value."""
    if conversion == "resolve":
        value = resolve(tree, tree.root)
    elif conversion == "resolve_prime":
        value = resolve_prime(tree, tree.root, t)
    else:
        raise ValueError(f"unknown conversion function {conversion!r}")
    return DEFAULT_VALUE if is_bottom(value) else value


def resolve_all(tree: InfoGatheringTree, conversion: str, t: int) -> Dict[LabelSequence, Value]:
    """Resolve every node of the tree, returning the full converted-value map.

    Used by the Fault Discovery Rule During Conversion (which inspects the
    converted values of every internal node's children) and by tests of the
    Correctness / Frontier / Hidden Fault lemmas.
    """
    cache: Dict[LabelSequence, Value] = {}
    if conversion == "resolve":
        resolve(tree, tree.root, cache)
    elif conversion == "resolve_prime":
        resolve_prime(tree, tree.root, t, cache)
    else:
        raise ValueError(f"unknown conversion function {conversion!r}")
    return cache
