"""Workload (fault-scenario) generators for the experiment harness.

A *scenario* bundles a faulty set with an adversary strategy.  The paper's
theorems quantify over *every* adversary, which a simulation cannot do, so the
harness approximates the worst case with a battery of named scenarios chosen
to exercise the distinct branches of the analysis:

* failure-free and benign-fault executions (validity / fast-path behaviour),
* a faulty source that equivocates, with and without colluding relays
  (the agreement-critical branch),
* detection-avoiding and minimal-exposure strategies (the block-progress
  dichotomy: persistent value or ``b − O(1)`` new global detections),
* crash/omission patterns including the staggered one-crash-per-round worst
  case for round counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Iterator, List, Optional, Sequence

from ..adversary import (Adversary, BenignAdversary, ConsistentLiarAdversary,
                         CrashAdversary, CrashRecoveryAdversary,
                         DelayedEquivocationAdversary,
                         EchoSuppressorAdversary,
                         EquivocatingSourceWithAlliesAdversary,
                         MinimalExposureAdversary, MovingTargetAdversary,
                         RandomLiarAdversary, ReceiveOmissionAdversary,
                         SendOmissionAdversary, SilentAdversary,
                         StaggeredCrashAdversary, StealthPathAdversary,
                         TransientCorruptionAdversary, TwoFacedAdversary,
                         TwoFacedSourceAdversary)
from ..core.sequences import ProcessorId
from ..runtime.simulation import choose_faulty


@dataclass(frozen=True)
class Scenario:
    """One named (faulty set, adversary factory) pair."""

    name: str
    faulty: FrozenSet[ProcessorId]
    adversary_factory: Callable[[], Adversary]

    def adversary(self) -> Adversary:
        return self.adversary_factory()

    @property
    def fault_count(self) -> int:
        return len(self.faulty)


def _named(name: str, faulty: FrozenSet[ProcessorId],
           factory: Callable[[], Adversary]) -> Scenario:
    return Scenario(name=name, faulty=faulty, adversary_factory=factory)


def standard_scenarios(n: int, t: int, source: ProcessorId = 0) -> List[Scenario]:
    """The default battery used by the correctness experiments.

    Covers: no faults, benign faults, a crashing minority, every lying
    strategy with a correct source, and every lying strategy with a faulty
    (equivocating) source, always with exactly ``t`` faults unless stated.
    """
    full = choose_faulty(n, t, source_faulty=False, source=source)
    with_source = choose_faulty(n, t, source_faulty=True, source=source)
    scenarios = [
        _named("fault-free", frozenset(), BenignAdversary),
        _named("benign-faults", full, BenignAdversary),
        _named("crash", full, lambda: CrashAdversary(crash_round=2,
                                                     partial_deliveries=1)),
        _named("staggered-crash", full, StaggeredCrashAdversary),
        _named("silent", full, SilentAdversary),
        _named("consistent-liar", full, ConsistentLiarAdversary),
        _named("random-liar", full, RandomLiarAdversary),
        _named("two-faced", full, TwoFacedAdversary),
        _named("echo-suppressor", full, EchoSuppressorAdversary),
        _named("stealth-path", full, StealthPathAdversary),
        _named("minimal-exposure", full, MinimalExposureAdversary),
        _named("faulty-source-two-faced", with_source, TwoFacedSourceAdversary),
        _named("faulty-source-allies", with_source,
               EquivocatingSourceWithAlliesAdversary),
        _named("faulty-source-stealth", with_source, StealthPathAdversary),
        _named("faulty-source-delayed", with_source, DelayedEquivocationAdversary),
        _named("faulty-source-silent", with_source, SilentAdversary),
    ]
    return scenarios


def adversarial_scenarios(n: int, t: int, source: ProcessorId = 0) -> List[Scenario]:
    """The subset of :func:`standard_scenarios` that actually lies (used where
    benign runs would not add information, e.g. round-bound stress)."""
    benign = {"fault-free", "benign-faults"}
    return [s for s in standard_scenarios(n, t, source) if s.name not in benign]


def worst_case_scenarios(n: int, t: int, source: ProcessorId = 0) -> List[Scenario]:
    """The strategies designed to push executions toward the worst-case bounds."""
    with_source = choose_faulty(n, t, source_faulty=True, source=source)
    full = choose_faulty(n, t, source_faulty=False, source=source)
    return [
        _named("faulty-source-allies", with_source,
               EquivocatingSourceWithAlliesAdversary),
        _named("faulty-source-stealth", with_source, StealthPathAdversary),
        _named("minimal-exposure", full, MinimalExposureAdversary),
        _named("staggered-crash", with_source, StaggeredCrashAdversary),
    ]


def fault_count_sweep(n: int, t: int, source_faulty: bool = True,
                      source: ProcessorId = 0) -> Iterator[FrozenSet[ProcessorId]]:
    """Faulty sets of every size from 0 to ``t`` (early-persistence experiments)."""
    for count in range(t + 1):
        yield choose_faulty(n, count, source_faulty=source_faulty and count > 0,
                            source=source)


def fault_zoo_scenarios(n: int, t: int, source: ProcessorId = 0) -> List[Scenario]:
    """The expanded fault-model zoo: omission, recovery, mobility, corruption.

    Kept out of :func:`standard_scenarios` deliberately — the correctness
    experiments assert agreement over the standard battery, and
    ``transient-corruption`` (state flips on *correct* processors) sits
    outside the Byzantine model those assertions rely on.  The zoo battery
    exists for robustness studies and the adversary-search harness.
    """
    full = choose_faulty(n, t, source_faulty=False, source=source)
    return [
        _named("send-omission", full,
               lambda: SendOmissionAdversary(rate_percent=50)),
        _named("receive-omission", full,
               lambda: ReceiveOmissionAdversary(rate_percent=50)),
        _named("crash-recovery", full,
               lambda: CrashRecoveryAdversary(crash_round=2, silent_rounds=2)),
        _named("moving-target", full,
               lambda: MovingTargetAdversary(active=max(1, t - 1),
                                             rotate_every=1)),
        _named("transient-corruption", full,
               lambda: TransientCorruptionAdversary(corrupt_rounds=1,
                                                    victims=1, flips=1)),
    ]


#: Named scenario batteries a serializable run description can reference.
#: Requests and experiment cells carry a battery *name* plus a scenario
#: *name* instead of the scenario object because the batteries contain
#: lambdas (adversary factories) that cannot cross a process boundary;
#: workers regenerate the battery deterministically from the names.
SCENARIO_BATTERIES = {
    "standard": standard_scenarios,
    "adversarial": adversarial_scenarios,
    "worst-case": worst_case_scenarios,
    "fault-zoo": fault_zoo_scenarios,
}


def scenario_by_name(name: str, n: int, t: int,
                     source: ProcessorId = 0) -> Optional[Scenario]:
    """Look up one standard scenario by name (used by the examples' CLI)."""
    for scenario in standard_scenarios(n, t, source):
        if scenario.name == name:
            return scenario
    return None


def scenario_names(n: int = 8, t: int = 2) -> Sequence[str]:
    return [scenario.name for scenario in standard_scenarios(n, t)]
