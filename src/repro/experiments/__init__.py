"""Experiment harness: workloads, sweeps, and per-table/figure runners."""

from __future__ import annotations

from .harness import (ExperimentCell, experiment_baselines,
                      experiment_block_progress, experiment_dominance,
                      experiment_exponential_growth, experiment_theorem1,
                      experiment_theorem2, experiment_theorem3,
                      experiment_theorem4, experiment_tradeoff, grid_cells,
                      measure, run_all_experiments, run_cell, run_cells,
                      run_grid_parallel, scenario_requests)
from .workloads import (SCENARIO_BATTERIES, Scenario, adversarial_scenarios,
                        fault_count_sweep, scenario_by_name, scenario_names,
                        standard_scenarios, worst_case_scenarios)

__all__ = [
    "Scenario", "SCENARIO_BATTERIES", "standard_scenarios",
    "adversarial_scenarios", "worst_case_scenarios", "fault_count_sweep",
    "scenario_by_name", "scenario_names",
    "measure", "experiment_theorem1", "experiment_theorem2", "experiment_theorem3",
    "experiment_theorem4", "experiment_exponential_growth", "experiment_tradeoff",
    "experiment_block_progress", "experiment_dominance", "experiment_baselines",
    "run_all_experiments", "scenario_requests",
    "ExperimentCell", "grid_cells", "run_cell", "run_cells", "run_grid_parallel",
]
