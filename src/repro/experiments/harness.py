"""The experiment harness: regenerate every quantitative claim of the paper.

Each ``experiment_*`` function corresponds to one entry of the per-experiment
index in DESIGN.md (E1–E9) and returns plain row dictionaries — "paper bound
vs measured" — that the benchmarks print with
:func:`repro.analysis.reporting.format_table` and that EXPERIMENTS.md records.
The functions take explicit ``(n, t, b)`` ranges so benchmarks can run small
instances quickly while the examples run the larger sweeps.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import (Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

from ..analysis.bounds import (algorithm_c_local_computation, exponential_bound,
                               theorem1_bound, theorem2_bound, theorem3_bound,
                               theorem4_bound)
from ..analysis.checkers import verify_run
from ..analysis.tradeoff import dominance_table, tradeoff_curve
from ..baselines import DolevStrongSpec, PeaseShostakLamportSpec, PhaseKingSpec
from ..core.algorithm_a import AlgorithmASpec, algorithm_a_resilience
from ..core.algorithm_b import AlgorithmBSpec, algorithm_b_resilience
from ..core.algorithm_c import AlgorithmCSpec, algorithm_c_resilience
from ..core.engine import get_default_engine, set_default_engine
from ..core.exponential import ExponentialSpec
from ..core.hybrid import HybridSpec, hybrid_parameters
from ..core.protocol import ProtocolConfig, ProtocolSpec
from ..core.values import DEFAULT_VALUE, Value
from ..runtime.simulation import RunResult, run_agreement
from .workloads import (Scenario, adversarial_scenarios, standard_scenarios,
                        worst_case_scenarios)


def measure(spec: ProtocolSpec, n: int, t: int, scenario: Scenario,
            initial_value=1, seed: int = 0) -> RunResult:
    """Run one (spec, scenario) pair and return its :class:`RunResult`."""
    config = ProtocolConfig(n=n, t=t, initial_value=initial_value)
    return run_agreement(spec, config, scenario.faulty, scenario.adversary(),
                         seed=seed)


def _measure_worst(spec_factory: Callable[[], ProtocolSpec], n: int, t: int,
                   scenarios: Sequence[Scenario],
                   round_bound: int, message_bound: int) -> Dict[str, object]:
    """Run *spec* under every scenario and aggregate the worst observations."""
    max_entries = 0
    max_units = 0
    all_ok = True
    rounds = 0
    for scenario in scenarios:
        result = measure(spec_factory(), n, t, scenario)
        verdict = verify_run(result, round_bound=round_bound,
                             message_bound=message_bound)
        all_ok = all_ok and verdict.ok
        max_entries = max(max_entries, result.metrics.max_message_entries())
        max_units = max(max_units, result.metrics.max_computation_units())
        rounds = max(rounds, result.rounds)
    return {
        "measured_rounds": rounds,
        "measured_max_entries": max_entries,
        "measured_max_computation": max_units,
        "all_scenarios_agree": all_ok,
    }


# ---------------------------------------------------------------------------
# E1 — Theorem 1: the hybrid algorithm
# ---------------------------------------------------------------------------

def experiment_theorem1(n: int, t: Optional[int] = None,
                        b_values: Iterable[int] = (3, 4),
                        scenarios: Optional[Sequence[Scenario]] = None
                        ) -> List[Dict[str, object]]:
    """Hybrid rounds / message size / phase structure vs the Main Theorem."""
    t = t if t is not None else algorithm_a_resilience(n)
    scenarios = scenarios if scenarios is not None else worst_case_scenarios(n, t)
    rows: List[Dict[str, object]] = []
    for b in b_values:
        if not 2 < b <= t:
            continue
        bound = theorem1_bound(n, t, b)
        params = hybrid_parameters(n, t, b)
        measured = _measure_worst(lambda b=b: HybridSpec(b), n, t, scenarios,
                                  bound.rounds, bound.max_message_entries)
        row = bound.as_row()
        row.update(measured)
        row.update({
            "t_AB": params.t_ab,
            "t_AC": params.t_ac,
            "k_AB": params.k_ab,
            "k_BC": params.k_bc,
            "c_rounds": params.c_rounds,
        })
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# E2 / E3 — Theorems 2 and 3: Algorithms A and B
# ---------------------------------------------------------------------------

def experiment_theorem2(n: int, t: Optional[int] = None,
                        b_values: Iterable[int] = (3, 4),
                        scenarios: Optional[Sequence[Scenario]] = None
                        ) -> List[Dict[str, object]]:
    """Algorithm A(b): measured costs against the Theorem 2 bounds."""
    t = t if t is not None else algorithm_a_resilience(n)
    scenarios = scenarios if scenarios is not None else standard_scenarios(n, t)
    rows = []
    for b in b_values:
        if not 2 < b <= t:
            continue
        bound = theorem2_bound(n, t, b)
        measured = _measure_worst(lambda b=b: AlgorithmASpec(b), n, t, scenarios,
                                  bound.rounds, bound.max_message_entries)
        row = bound.as_row()
        row.update(measured)
        rows.append(row)
    return rows


def experiment_theorem3(n: int, t: Optional[int] = None,
                        b_values: Iterable[int] = (2, 3),
                        scenarios: Optional[Sequence[Scenario]] = None
                        ) -> List[Dict[str, object]]:
    """Algorithm B(b): measured costs against the Theorem 3 bounds."""
    t = t if t is not None else algorithm_b_resilience(n)
    scenarios = scenarios if scenarios is not None else standard_scenarios(n, t)
    rows = []
    for b in b_values:
        if not 1 < b <= t:
            continue
        bound = theorem3_bound(n, t, b)
        measured = _measure_worst(lambda b=b: AlgorithmBSpec(b), n, t, scenarios,
                                  bound.rounds, bound.max_message_entries)
        row = bound.as_row()
        row.update(measured)
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# E4 — Theorem 4: Algorithm C
# ---------------------------------------------------------------------------

def experiment_theorem4(n_values: Iterable[int],
                        scenarios_for: Optional[Callable[[int, int], Sequence[Scenario]]] = None
                        ) -> List[Dict[str, object]]:
    """Algorithm C: rounds ``t + 1``, messages ``O(n)``, computation ``O(n^2.5)``."""
    rows = []
    for n in n_values:
        t = algorithm_c_resilience(n)
        if t < 1:
            continue
        scenarios = (scenarios_for(n, t) if scenarios_for is not None
                     else standard_scenarios(n, t))
        bound = theorem4_bound(n, t)
        measured = _measure_worst(AlgorithmCSpec, n, t, scenarios,
                                  bound.rounds, bound.max_message_entries)
        row = bound.as_row()
        row.update(measured)
        row["computation_model_n^2.5"] = round(algorithm_c_local_computation(n), 1)
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# E5 — Figure 1 / Section 3: Exponential Algorithm growth
# ---------------------------------------------------------------------------

def experiment_exponential_growth(n_values: Iterable[int],
                                  t_of_n: Optional[Callable[[int], int]] = None
                                  ) -> List[Dict[str, object]]:
    """Exponential Algorithm: message and computation growth as n (and t) grow."""
    t_of_n = t_of_n if t_of_n is not None else algorithm_a_resilience
    rows = []
    for n in n_values:
        t = max(1, t_of_n(n))
        bound = exponential_bound(n, t)
        scenarios = worst_case_scenarios(n, t)
        measured = _measure_worst(ExponentialSpec, n, t, scenarios,
                                  bound.rounds, bound.max_message_entries)
        row = bound.as_row()
        row.update(measured)
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# E6 — the rounds vs message-length trade-off (Coan comparison)
# ---------------------------------------------------------------------------

def experiment_tradeoff(n: int, t: Optional[int] = None,
                        b_values: Iterable[int] = (2, 3, 4, 5, 6)
                        ) -> List[Dict[str, object]]:
    """The analytic trade-off curve: ours vs Coan vs the Exponential Algorithm."""
    t = t if t is not None else algorithm_a_resilience(n)
    return [point.as_row() for point in tradeoff_curve(n, t, b_values)]


# ---------------------------------------------------------------------------
# E7 — block progress: faults detected per block vs persistent values
# ---------------------------------------------------------------------------

def experiment_block_progress(n: int, t: int, b: int,
                              scenarios: Optional[Sequence[Scenario]] = None
                              ) -> List[Dict[str, object]]:
    """Per-scenario: how many faults each correct processor globally detected,
    round by round, while running Algorithm A(b) — the paper's progress
    dichotomy made visible."""
    scenarios = scenarios if scenarios is not None else worst_case_scenarios(n, t)
    rows = []
    for scenario in scenarios:
        result = measure(AlgorithmASpec(b), n, t, scenario)
        detections_per_round: Dict[int, int] = {}
        for log in result.discovery_logs.values():
            for round_number, count in log.items():
                detections_per_round[round_number] = max(
                    detections_per_round.get(round_number, 0), count)
        rows.append({
            "scenario": scenario.name,
            "faults": scenario.fault_count,
            "agreement": result.agreement,
            "total_detected_max": max(
                (len(found) for found in result.discovered.values()), default=0),
            "detections_by_round": dict(sorted(detections_per_round.items())),
            "rounds": result.rounds,
        })
    return rows


# ---------------------------------------------------------------------------
# E8 — the dominance claim: hybrid vs its ingredients
# ---------------------------------------------------------------------------

def experiment_dominance(n: int, t: Optional[int] = None,
                         b_values: Iterable[int] = (3, 4, 5)
                         ) -> List[Dict[str, object]]:
    """Rounds of hybrid(b) vs Algorithm A(b) vs the Exponential Algorithm."""
    t = t if t is not None else algorithm_a_resilience(n)
    return dominance_table(n, t, b_values)


# ---------------------------------------------------------------------------
# E9 — baselines
# ---------------------------------------------------------------------------

def experiment_baselines(n: int, t: int,
                         scenarios: Optional[Sequence[Scenario]] = None
                         ) -> List[Dict[str, object]]:
    """Head-to-head costs of the paper's algorithms and the external baselines.

    Baselines with stricter resilience requirements are skipped when the
    requested ``(n, t)`` violates them (shown as missing rows, as in the paper
    where each algorithm is only defined up to its own resilience).
    """
    t_for = {
        "exponential": algorithm_a_resilience(n),
        "psl-om": algorithm_a_resilience(n),
        "phase-king": algorithm_b_resilience(n),
        "algorithm-c": algorithm_c_resilience(n),
    }
    candidates: List[ProtocolSpec] = [
        ExponentialSpec(),
        PeaseShostakLamportSpec(),
        PhaseKingSpec(),
        AlgorithmCSpec(),
        DolevStrongSpec(),
    ]
    if t >= 3:
        candidates.append(AlgorithmASpec(min(3, t)))
        candidates.append(HybridSpec(min(3, t)))
    if t >= 2 and t <= algorithm_b_resilience(n):
        candidates.append(AlgorithmBSpec(min(2, t)))
    rows = []
    for spec in candidates:
        effective_t = min(t, t_for.get(spec.name.split("(")[0], t))
        if effective_t < 1:
            continue
        scenario_list = (scenarios if scenarios is not None
                         else worst_case_scenarios(n, effective_t))
        config = ProtocolConfig(n=n, t=effective_t, initial_value=1)
        try:
            spec.validate(config)
        except Exception:
            continue
        max_entries = 0
        rounds = 0
        ok = True
        for scenario in scenario_list:
            fresh_spec = type(spec)(**({"b": getattr(spec, "b")}
                                       if hasattr(spec, "b") else {}))
            result = run_agreement(fresh_spec, config, scenario.faulty,
                                   scenario.adversary())
            ok = ok and result.succeeded
            rounds = max(rounds, result.rounds)
            max_entries = max(max_entries, result.metrics.max_message_entries())
        rows.append({
            "protocol": spec.name,
            "n": n,
            "t": effective_t,
            "rounds": rounds,
            "max_message_entries": max_entries,
            "all_scenarios_agree": ok,
        })
    return rows


# ---------------------------------------------------------------------------
# The parallel experiment runner: one worker per (spec, scenario) cell
# ---------------------------------------------------------------------------

#: Named scenario batteries a cell can reference.  Cells carry the battery
#: *name* plus the scenario *name* instead of the scenario object because the
#: batteries contain lambdas (adversary factories) that cannot cross a
#: process boundary; workers regenerate the battery deterministically.
SCENARIO_BATTERIES: Dict[str, Callable[[int, int], Sequence[Scenario]]] = {
    "standard": standard_scenarios,
    "adversarial": adversarial_scenarios,
    "worst-case": worst_case_scenarios,
}


@dataclass(frozen=True)
class ExperimentCell:
    """One unit of parallel work: run *spec* at ``(n, t)`` under one scenario.

    Everything in a cell is picklable, so cells can be shipped to process-pool
    workers as-is.  ``battery``/``scenario`` name a scenario of one of the
    :data:`SCENARIO_BATTERIES`, which the worker regenerates locally.
    """

    spec: ProtocolSpec
    n: int
    t: int
    battery: str = "standard"
    scenario: str = "fault-free"
    initial_value: Value = 1
    seed: int = 0

    def resolve_scenario(self) -> Scenario:
        try:
            battery = SCENARIO_BATTERIES[self.battery]
        except KeyError:
            raise ValueError(
                f"unknown scenario battery {self.battery!r}; expected one of "
                f"{sorted(SCENARIO_BATTERIES)}") from None
        for scenario in battery(self.n, self.t):
            if scenario.name == self.scenario:
                return scenario
        raise ValueError(
            f"battery {self.battery!r} at (n={self.n}, t={self.t}) has no "
            f"scenario named {self.scenario!r}")


def grid_cells(specs: Sequence[ProtocolSpec],
               grid: Iterable[Tuple[int, int]],
               battery: str = "standard",
               scenario_names: Optional[Sequence[str]] = None,
               initial_value: Value = 1, seed: int = 0
               ) -> List[ExperimentCell]:
    """The cross product spec × (n, t) × scenario as a flat list of cells."""
    cells: List[ExperimentCell] = []
    battery_fn = SCENARIO_BATTERIES[battery]
    for n, t in grid:
        names = (list(scenario_names) if scenario_names is not None
                 else [s.name for s in battery_fn(n, t)])
        for spec in specs:
            for name in names:
                cells.append(ExperimentCell(spec=spec, n=n, t=t,
                                            battery=battery, scenario=name,
                                            initial_value=initial_value,
                                            seed=seed))
    return cells


def run_cell(cell: ExperimentCell) -> Dict[str, object]:
    """Execute one cell and return a flat, picklable summary row."""
    scenario = cell.resolve_scenario()
    result = measure(cell.spec, cell.n, cell.t, scenario,
                     initial_value=cell.initial_value, seed=cell.seed)
    row: Dict[str, object] = {
        "protocol": result.protocol,
        "scenario": scenario.name,
        "battery": cell.battery,
        "faults": len(result.faulty),
        "succeeded": result.succeeded,
        "discovery_sound": result.soundness_of_discovery(),
    }
    row.update(result.summary())
    return row


def _pool_worker_init(engine: Optional[str]) -> None:  # pragma: no cover - subprocess
    if engine is not None:
        os.environ["REPRO_EIG_ENGINE"] = engine
        set_default_engine(engine)


def run_cells(cells: Sequence[ExperimentCell], parallel: bool = True,
              max_workers: Optional[int] = None,
              engine: Optional[str] = None) -> List[Dict[str, object]]:
    """Run every cell and return its summary rows, preserving cell order.

    With ``parallel=True`` (the default) the cells are distributed over a
    process pool, one worker task per ``(spec, scenario)`` cell — agreement
    instances are independent, so sweeps scale with the core count.  Workers
    inherit the requested *engine* (default: the parent's default engine).
    Falls back to in-process execution when only one cell is requested or the
    platform cannot spawn a pool.
    """
    cells = list(cells)
    if not cells:
        return []
    if not parallel or len(cells) == 1:
        return [run_cell(cell) for cell in cells]
    if engine is None:
        # Resolve now so spawn-started workers (which re-import the engine
        # module and would fall back to the environment default) inherit the
        # parent's effective engine, not just fork-started ones.
        engine = get_default_engine()
    if max_workers is not None:
        max_workers = max(1, min(max_workers, len(cells)))
    try:
        with ProcessPoolExecutor(max_workers=max_workers,
                                 initializer=_pool_worker_init,
                                 initargs=(engine,)) as pool:
            return list(pool.map(run_cell, cells))
    except (OSError, PermissionError):  # pragma: no cover - sandboxed platforms
        return [run_cell(cell) for cell in cells]


def run_grid_parallel(specs: Sequence[ProtocolSpec],
                      grid: Iterable[Tuple[int, int]],
                      battery: str = "standard",
                      scenario_names: Optional[Sequence[str]] = None,
                      max_workers: Optional[int] = None,
                      engine: Optional[str] = None) -> List[Dict[str, object]]:
    """Convenience wrapper: build the grid's cells and run them in parallel."""
    cells = grid_cells(specs, grid, battery=battery,
                       scenario_names=scenario_names)
    return run_cells(cells, parallel=True, max_workers=max_workers,
                     engine=engine)


# ---------------------------------------------------------------------------
# Convenience: run everything at laptop scale (used by examples and docs)
# ---------------------------------------------------------------------------

def run_all_experiments(scale: str = "small") -> Dict[str, List[Dict[str, object]]]:
    """Run E1–E9 at a chosen scale and return {experiment id: rows}.

    ``scale="small"`` keeps every instance under a second; ``scale="paper"``
    uses the larger sweeps quoted in EXPERIMENTS.md (minutes, still
    laptop-friendly).
    """
    if scale == "small":
        settings = {
            "e1": dict(n=13, t=4, b_values=(3, 4)),
            "e2": dict(n=10, t=3, b_values=(3,)),
            "e3": dict(n=13, t=3, b_values=(2, 3)),
            "e4_ns": (14, 20),
            "e5_ns": (4, 7),
            "e6": dict(n=31, t=10, b_values=(3, 4, 5, 6)),
            "e7": dict(n=10, t=3, b=3),
            "e8": dict(n=31, t=10, b_values=(3, 4, 5)),
            "e9": dict(n=13, t=3),
        }
    else:
        settings = {
            "e1": dict(n=16, t=5, b_values=(3, 4, 5)),
            "e2": dict(n=13, t=4, b_values=(3, 4)),
            "e3": dict(n=17, t=4, b_values=(2, 3, 4)),
            "e4_ns": (14, 20, 32, 50),
            "e5_ns": (4, 7, 10),
            "e6": dict(n=61, t=20, b_values=(3, 4, 5, 6, 8, 10)),
            "e7": dict(n=13, t=4, b=3),
            "e8": dict(n=61, t=20, b_values=(3, 4, 5, 6, 8)),
            "e9": dict(n=13, t=3),
        }
    return {
        "E1-theorem1-hybrid": experiment_theorem1(**settings["e1"]),
        "E2-theorem2-algorithm-a": experiment_theorem2(**settings["e2"]),
        "E3-theorem3-algorithm-b": experiment_theorem3(**settings["e3"]),
        "E4-theorem4-algorithm-c": experiment_theorem4(settings["e4_ns"]),
        "E5-exponential-growth": experiment_exponential_growth(settings["e5_ns"]),
        "E6-tradeoff": experiment_tradeoff(**settings["e6"]),
        "E7-block-progress": experiment_block_progress(**settings["e7"]),
        "E8-dominance": experiment_dominance(**settings["e8"]),
        "E9-baselines": experiment_baselines(**settings["e9"]),
    }
