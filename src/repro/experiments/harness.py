"""The experiment harness: regenerate every quantitative claim of the paper.

Each ``experiment_*`` function corresponds to one entry of the per-experiment
index in DESIGN.md (E1–E9) and returns plain row dictionaries — "paper bound
vs measured" — that the benchmarks print with
:func:`repro.analysis.reporting.format_table` and that EXPERIMENTS.md records.
The functions take explicit ``(n, t, b)`` ranges so benchmarks can run small
instances quickly while the examples run the larger sweeps.

All default sweeps are described as serializable
:class:`~repro.api.request.RunRequest` values and routed through the
executor-backed façade (:func:`~repro.api.facade.execute_many` /
:func:`~repro.api.facade.execute_grouped`, thin wrappers over the ``"pool"``
backend of :mod:`repro.api.executors`), so the (spec, scenario) cells run in
parallel over the process pool **and** the eligible EIG cells (Exponential,
Algorithms A and B) take the whole-run batched executor inside their workers
— the two speedups compound.  :func:`run_cells` additionally accepts an
explicit executor (e.g. ``"sharded"`` for large-``n`` grids).  Callers that
pass hand-built :class:`~repro.experiments.workloads.Scenario` objects
(whose adversary factories cannot be named in a request) keep the in-process
path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple)

from ..analysis.bounds import (algorithm_c_local_computation, exponential_bound,
                               theorem1_bound, theorem2_bound, theorem3_bound,
                               theorem4_bound)
from ..analysis.checkers import verify_report
from ..analysis.tradeoff import dominance_table, tradeoff_curve
from ..api import (RunReport, RunRequest, build_protocol, execute,
                   execute_grouped, execute_many, iter_execute,
                   request_fields_for_spec)
from ..baselines import DolevStrongSpec, PeaseShostakLamportSpec, PhaseKingSpec
from ..core.algorithm_a import AlgorithmASpec, algorithm_a_resilience
from ..core.algorithm_b import AlgorithmBSpec, algorithm_b_resilience
from ..core.algorithm_c import AlgorithmCSpec, algorithm_c_resilience
from ..core.exponential import ExponentialSpec
from ..core.hybrid import HybridSpec, hybrid_parameters
from ..core.protocol import ProtocolConfig, ProtocolSpec
from ..core.values import DEFAULT_VALUE, Value
from ..runtime.simulation import RunResult, run_agreement
from .workloads import SCENARIO_BATTERIES, Scenario


def measure(spec: ProtocolSpec, n: int, t: int, scenario: Scenario,
            initial_value=1, seed: int = 0) -> RunResult:
    """Run one (spec, scenario) pair and return its :class:`RunResult`."""
    config = ProtocolConfig(n=n, t=t, initial_value=initial_value)
    return run_agreement(spec, config, scenario.faulty, scenario.adversary(),
                         seed=seed)


def scenario_requests(protocol: str, params: Mapping[str, object],
                      n: int, t: int, battery: str,
                      names: Optional[Sequence[str]] = None,
                      initial_value: Value = 1, seed: int = 0,
                      engine: str = "auto") -> List[RunRequest]:
    """One :class:`RunRequest` per named scenario of *battery* at ``(n, t)``."""
    if names is None:
        names = [s.name for s in SCENARIO_BATTERIES[battery](n, t)]
    return [RunRequest(protocol=protocol, protocol_params=dict(params),
                       n=n, t=t, initial_value=initial_value,
                       scenario=name, battery=battery, seed=seed,
                       engine=engine)
            for name in names]


def _worst_of_reports(reports: Sequence[RunReport], round_bound: int,
                      message_bound: int) -> Dict[str, object]:
    """Aggregate the worst observations over one protocol's scenario reports."""
    max_entries = 0
    max_units = 0
    all_ok = True
    rounds = 0
    for report in reports:
        verdict = verify_report(report, round_bound=round_bound,
                                message_bound=message_bound)
        all_ok = all_ok and verdict.ok
        max_entries = max(max_entries, report.metrics["max_message_entries"])
        max_units = max(max_units, report.metrics["max_computation_units"])
        rounds = max(rounds, report.rounds)
    return {
        "measured_rounds": rounds,
        "measured_max_entries": max_entries,
        "measured_max_computation": max_units,
        "all_scenarios_agree": all_ok,
    }


#: One protocol's slot in a worst-case grid: ``(protocol, params, n, t,
#: round_bound, message_bound)``.
_WorstJob = Tuple[str, Mapping[str, object], int, int, int, int]


def _measure_worst_grid(jobs: Sequence[_WorstJob],
                        battery: str = "standard",
                        scenarios: Optional[Sequence[Scenario]] = None
                        ) -> List[Dict[str, object]]:
    """Aggregate worst-case observations for every job, one result per job.

    With ``scenarios=None`` (every default sweep) all jobs' scenario cells
    are flattened into a **single** :func:`~repro.api.facade.execute_many`
    call — one process pool for the whole grid, parallel across cells,
    batched inside eligible EIG cells.  Explicit *scenarios* objects (which
    may carry unregistered adversary factories) run in process through
    :func:`measure`.
    """
    if scenarios is None:
        per_job_reports = execute_grouped(
            scenario_requests(protocol, params, n, t, battery)
            for protocol, params, n, t, _, _ in jobs)
        return [_worst_of_reports(reports, round_bound, message_bound)
                for (_, _, _, _, round_bound, message_bound), reports
                in zip(jobs, per_job_reports)]

    results = []
    for protocol, params, n, t, round_bound, message_bound in jobs:
        reports = [_report_for_scenario(build_protocol(protocol, params),
                                        n, t, scenario)
                   for scenario in scenarios]
        results.append(_worst_of_reports(reports, round_bound, message_bound))
    return results


def _report_for_scenario(spec: ProtocolSpec, n: int, t: int,
                         scenario: Scenario) -> RunReport:
    """In-process run of one hand-built scenario, reported truthfully.

    Hand-built scenarios execute under the process-default engine via
    :func:`measure`; the report's engine audit trail records that engine
    rather than pretending a planner ran.
    """
    from ..core.engine import get_default_engine
    engine = get_default_engine()
    return RunReport.from_result(measure(spec, n, t, scenario),
                                 engine=engine, engine_resolved=engine,
                                 scenario=scenario.name)


def _measure_worst(protocol: str, params: Mapping[str, object], n: int, t: int,
                   round_bound: int, message_bound: int,
                   scenarios: Optional[Sequence[Scenario]] = None,
                   battery: str = "standard") -> Dict[str, object]:
    """Single-job form of :func:`_measure_worst_grid`."""
    return _measure_worst_grid(
        [(protocol, params, n, t, round_bound, message_bound)],
        battery=battery, scenarios=scenarios)[0]


# ---------------------------------------------------------------------------
# E1 — Theorem 1: the hybrid algorithm
# ---------------------------------------------------------------------------

def experiment_theorem1(n: int, t: Optional[int] = None,
                        b_values: Iterable[int] = (3, 4),
                        scenarios: Optional[Sequence[Scenario]] = None
                        ) -> List[Dict[str, object]]:
    """Hybrid rounds / message size / phase structure vs the Main Theorem."""
    t = t if t is not None else algorithm_a_resilience(n)
    admitted = [(b, theorem1_bound(n, t, b), hybrid_parameters(n, t, b))
                for b in b_values if 2 < b <= t]
    measured_list = _measure_worst_grid(
        [("hybrid", {"b": b}, n, t, bound.rounds, bound.max_message_entries)
         for b, bound, _ in admitted],
        battery="worst-case", scenarios=scenarios)
    rows: List[Dict[str, object]] = []
    for (b, bound, params), measured in zip(admitted, measured_list):
        row = bound.as_row()
        row.update(measured)
        row.update({
            "t_AB": params.t_ab,
            "t_AC": params.t_ac,
            "k_AB": params.k_ab,
            "k_BC": params.k_bc,
            "c_rounds": params.c_rounds,
        })
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# E2 / E3 — Theorems 2 and 3: Algorithms A and B
# ---------------------------------------------------------------------------

def experiment_theorem2(n: int, t: Optional[int] = None,
                        b_values: Iterable[int] = (3, 4),
                        scenarios: Optional[Sequence[Scenario]] = None
                        ) -> List[Dict[str, object]]:
    """Algorithm A(b): measured costs against the Theorem 2 bounds."""
    t = t if t is not None else algorithm_a_resilience(n)
    admitted = [(b, theorem2_bound(n, t, b))
                for b in b_values if 2 < b <= t]
    measured_list = _measure_worst_grid(
        [("algorithm-a", {"b": b}, n, t, bound.rounds,
          bound.max_message_entries) for b, bound in admitted],
        scenarios=scenarios)
    rows = []
    for (_, bound), measured in zip(admitted, measured_list):
        row = bound.as_row()
        row.update(measured)
        rows.append(row)
    return rows


def experiment_theorem3(n: int, t: Optional[int] = None,
                        b_values: Iterable[int] = (2, 3),
                        scenarios: Optional[Sequence[Scenario]] = None
                        ) -> List[Dict[str, object]]:
    """Algorithm B(b): measured costs against the Theorem 3 bounds."""
    t = t if t is not None else algorithm_b_resilience(n)
    admitted = [(b, theorem3_bound(n, t, b))
                for b in b_values if 1 < b <= t]
    measured_list = _measure_worst_grid(
        [("algorithm-b", {"b": b}, n, t, bound.rounds,
          bound.max_message_entries) for b, bound in admitted],
        scenarios=scenarios)
    rows = []
    for (_, bound), measured in zip(admitted, measured_list):
        row = bound.as_row()
        row.update(measured)
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# E4 — Theorem 4: Algorithm C
# ---------------------------------------------------------------------------

def experiment_theorem4(n_values: Iterable[int],
                        scenarios_for: Optional[Callable[[int, int], Sequence[Scenario]]] = None
                        ) -> List[Dict[str, object]]:
    """Algorithm C: rounds ``t + 1``, messages ``O(n)``, computation ``O(n^2.5)``."""
    admitted = [(n, algorithm_c_resilience(n), theorem4_bound(
        n, algorithm_c_resilience(n))) for n in n_values
        if algorithm_c_resilience(n) >= 1]
    if scenarios_for is None:
        measured_list = _measure_worst_grid(
            [("algorithm-c", {}, n, t, bound.rounds,
              bound.max_message_entries) for n, t, bound in admitted])
    else:
        # Per-(n, t) scenario objects cannot share one grid call.
        measured_list = [
            _measure_worst("algorithm-c", {}, n, t, bound.rounds,
                           bound.max_message_entries,
                           scenarios=scenarios_for(n, t))
            for n, t, bound in admitted]
    rows = []
    for (n, t, bound), measured in zip(admitted, measured_list):
        row = bound.as_row()
        row.update(measured)
        row["computation_model_n^2.5"] = round(algorithm_c_local_computation(n), 1)
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# E5 — Figure 1 / Section 3: Exponential Algorithm growth
# ---------------------------------------------------------------------------

def experiment_exponential_growth(n_values: Iterable[int],
                                  t_of_n: Optional[Callable[[int], int]] = None
                                  ) -> List[Dict[str, object]]:
    """Exponential Algorithm: message and computation growth as n (and t) grow."""
    t_of_n = t_of_n if t_of_n is not None else algorithm_a_resilience
    admitted = [(n, max(1, t_of_n(n)), exponential_bound(n, max(1, t_of_n(n))))
                for n in n_values]
    measured_list = _measure_worst_grid(
        [("exponential", {}, n, t, bound.rounds, bound.max_message_entries)
         for n, t, bound in admitted],
        battery="worst-case")
    rows = []
    for (_, _, bound), measured in zip(admitted, measured_list):
        row = bound.as_row()
        row.update(measured)
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# E6 — the rounds vs message-length trade-off (Coan comparison)
# ---------------------------------------------------------------------------

def experiment_tradeoff(n: int, t: Optional[int] = None,
                        b_values: Iterable[int] = (2, 3, 4, 5, 6)
                        ) -> List[Dict[str, object]]:
    """The analytic trade-off curve: ours vs Coan vs the Exponential Algorithm."""
    t = t if t is not None else algorithm_a_resilience(n)
    return [point.as_row() for point in tradeoff_curve(n, t, b_values)]


# ---------------------------------------------------------------------------
# E7 — block progress: faults detected per block vs persistent values
# ---------------------------------------------------------------------------

def experiment_block_progress(n: int, t: int, b: int,
                              scenarios: Optional[Sequence[Scenario]] = None
                              ) -> List[Dict[str, object]]:
    """Per-scenario: how many faults each correct processor globally detected,
    round by round, while running Algorithm A(b) — the paper's progress
    dichotomy made visible."""
    if scenarios is None:
        reports = execute_many(scenario_requests("algorithm-a", {"b": b},
                                                 n, t, "worst-case"))
    else:
        reports = [_report_for_scenario(AlgorithmASpec(b), n, t, scenario)
                   for scenario in scenarios]
    rows = []
    for report in reports:
        detections_per_round: Dict[int, int] = {}
        for log in report.discovery_logs.values():
            for round_number, count in log.items():
                detections_per_round[round_number] = max(
                    detections_per_round.get(round_number, 0), count)
        rows.append({
            "scenario": report.scenario,
            "faults": report.faults,
            "agreement": report.agreement,
            "total_detected_max": max(
                (len(found) for found in report.discovered.values()), default=0),
            "detections_by_round": dict(sorted(detections_per_round.items())),
            "rounds": report.rounds,
        })
    return rows


# ---------------------------------------------------------------------------
# E8 — the dominance claim: hybrid vs its ingredients
# ---------------------------------------------------------------------------

def experiment_dominance(n: int, t: Optional[int] = None,
                         b_values: Iterable[int] = (3, 4, 5)
                         ) -> List[Dict[str, object]]:
    """Rounds of hybrid(b) vs Algorithm A(b) vs the Exponential Algorithm."""
    t = t if t is not None else algorithm_a_resilience(n)
    return dominance_table(n, t, b_values)


# ---------------------------------------------------------------------------
# E9 — baselines
# ---------------------------------------------------------------------------

def experiment_baselines(n: int, t: int,
                         scenarios: Optional[Sequence[Scenario]] = None
                         ) -> List[Dict[str, object]]:
    """Head-to-head costs of the paper's algorithms and the external baselines.

    Baselines with stricter resilience requirements are skipped when the
    requested ``(n, t)`` violates them (shown as missing rows, as in the paper
    where each algorithm is only defined up to its own resilience).
    """
    t_for = {
        "exponential": algorithm_a_resilience(n),
        "psl-om": algorithm_a_resilience(n),
        "phase-king": algorithm_b_resilience(n),
        "algorithm-c": algorithm_c_resilience(n),
    }
    candidates: List[ProtocolSpec] = [
        ExponentialSpec(),
        PeaseShostakLamportSpec(),
        PhaseKingSpec(),
        AlgorithmCSpec(),
        DolevStrongSpec(),
    ]
    if t >= 3:
        candidates.append(AlgorithmASpec(min(3, t)))
        candidates.append(HybridSpec(min(3, t)))
    if t >= 2 and t <= algorithm_b_resilience(n):
        candidates.append(AlgorithmBSpec(min(2, t)))
    admitted: List[Tuple[ProtocolSpec, int, List[RunRequest]]] = []
    for spec in candidates:
        effective_t = min(t, t_for.get(spec.name.split("(")[0], t))
        if effective_t < 1:
            continue
        config = ProtocolConfig(n=n, t=effective_t, initial_value=1)
        try:
            spec.validate(config)
        # repro-lint: waive[errors/broad-except] -- admission probe: any
        # validation failure just means this (n, t) is out of the
        # protocol's resilience envelope, so the spec is skipped
        except Exception:
            continue
        if scenarios is None:
            protocol, params = request_fields_for_spec(spec)
            requests = scenario_requests(protocol, params, n, effective_t,
                                         "worst-case")
        else:
            requests = []
        admitted.append((spec, effective_t, requests))

    # One flat execute_grouped over every admitted (spec, scenario) cell: the
    # pool parallelises across cells while eligible EIG cells batch inside.
    reports_by_spec: Dict[int, List[RunReport]] = {}
    if scenarios is None:
        grouped = execute_grouped(requests for _, _, requests in admitted)
        reports_by_spec = dict(enumerate(grouped))

    rows = []
    for index, (spec, effective_t, _) in enumerate(admitted):
        if scenarios is None:
            reports = reports_by_spec[index]
        else:
            protocol, params = request_fields_for_spec(spec)
            reports = [
                _report_for_scenario(build_protocol(protocol, params),
                                     n, effective_t, scenario)
                for scenario in scenarios]
        rows.append({
            "protocol": spec.name,
            "n": n,
            "t": effective_t,
            "rounds": max((r.rounds for r in reports), default=0),
            "max_message_entries": max(
                (r.metrics["max_message_entries"] for r in reports), default=0),
            "all_scenarios_agree": all(r.succeeded for r in reports),
        })
    return rows


# ---------------------------------------------------------------------------
# The parallel experiment runner: one worker per (spec, scenario) cell
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ExperimentCell:
    """One unit of parallel work: run *spec* at ``(n, t)`` under one scenario.

    Everything in a cell is picklable, so cells can be shipped to process-pool
    workers as-is.  ``battery``/``scenario`` name a scenario of one of the
    :data:`~repro.experiments.workloads.SCENARIO_BATTERIES`, which the worker
    regenerates locally.  A cell is the spec-object twin of a
    :class:`~repro.api.request.RunRequest`; :meth:`to_request` converts.
    """

    spec: ProtocolSpec
    n: int
    t: int
    battery: str = "standard"
    scenario: str = "fault-free"
    initial_value: Value = 1
    seed: int = 0

    def resolve_scenario(self) -> Scenario:
        try:
            battery = SCENARIO_BATTERIES[self.battery]
        except KeyError:
            raise ValueError(
                f"unknown scenario battery {self.battery!r}; expected one of "
                f"{sorted(SCENARIO_BATTERIES)}") from None
        for scenario in battery(self.n, self.t):
            if scenario.name == self.scenario:
                return scenario
        raise ValueError(
            f"battery {self.battery!r} at (n={self.n}, t={self.t}) has no "
            f"scenario named {self.scenario!r}")

    def to_request(self, engine: str = "auto") -> RunRequest:
        """The serializable façade request equivalent to this cell."""
        protocol, params = request_fields_for_spec(self.spec)
        return RunRequest(protocol=protocol, protocol_params=params,
                          n=self.n, t=self.t,
                          initial_value=self.initial_value,
                          scenario=self.scenario, battery=self.battery,
                          seed=self.seed, engine=engine)


def grid_cells(specs: Sequence[ProtocolSpec],
               grid: Iterable[Tuple[int, int]],
               battery: str = "standard",
               scenario_names: Optional[Sequence[str]] = None,
               initial_value: Value = 1, seed: int = 0
               ) -> List[ExperimentCell]:
    """The cross product spec × (n, t) × scenario as a flat list of cells."""
    cells: List[ExperimentCell] = []
    battery_fn = SCENARIO_BATTERIES[battery]
    for n, t in grid:
        names = (list(scenario_names) if scenario_names is not None
                 else [s.name for s in battery_fn(n, t)])
        for spec in specs:
            for name in names:
                cells.append(ExperimentCell(spec=spec, n=n, t=t,
                                            battery=battery, scenario=name,
                                            initial_value=initial_value,
                                            seed=seed))
    return cells


def _cell_row(cell: ExperimentCell, report: RunReport) -> Dict[str, object]:
    """Flatten one cell's report into the harness's tabular row layout."""
    row: Dict[str, object] = {
        "protocol": report.protocol,
        "scenario": report.scenario,
        "battery": cell.battery,
        "faults": report.faults,
        "succeeded": report.succeeded,
        "discovery_sound": report.discovery_sound,
    }
    row.update(report.summary())
    return row


def run_cell(cell: ExperimentCell,
             engine: str = "auto") -> Dict[str, object]:
    """Execute one cell through the façade and return its summary row."""
    return _cell_row(cell, execute(cell.to_request(engine=engine)))


def run_cells(cells: Sequence[ExperimentCell], parallel: bool = True,
              max_workers: Optional[int] = None,
              engine: Optional[str] = None,
              executor: object = None) -> List[Dict[str, object]]:
    """Run every cell and return its summary rows, preserving cell order.

    Cells convert to façade requests and run on the pluggable execution
    layer (:mod:`repro.api.executors`): with the default ``executor=None``
    and ``parallel=True`` that is the ``"pool"`` backend — one process-pool
    task per ``(spec, scenario)`` cell, agreement instances being
    independent — and, because the default ``engine="auto"`` re-plans inside
    each worker, the eligible EIG cells additionally step all their
    processors per round as whole-run batched kernels.  Pass an explicit
    *executor* (an :class:`~repro.api.executors.Executor` instance or
    registry name such as ``"sharded"``) to place the whole grid on another
    backend, or an explicit *engine* name to pin every cell
    (``"fast"``/``"reference"`` for oracle sweeps).
    """
    cells = list(cells)
    if not cells:
        return []
    requests = [cell.to_request(engine=engine or "auto") for cell in cells]
    if executor is not None:
        by_index = dict(iter_execute(requests, executor=executor))
        reports = [by_index[i] for i in range(len(requests))]
    else:
        reports = execute_many(requests, parallel=parallel,
                               max_workers=max_workers)
    return [_cell_row(cell, report)
            for cell, report in zip(cells, reports)]


def run_grid_parallel(specs: Sequence[ProtocolSpec],
                      grid: Iterable[Tuple[int, int]],
                      battery: str = "standard",
                      scenario_names: Optional[Sequence[str]] = None,
                      max_workers: Optional[int] = None,
                      engine: Optional[str] = None,
                      executor: object = None) -> List[Dict[str, object]]:
    """Convenience wrapper: build the grid's cells and run them in parallel."""
    cells = grid_cells(specs, grid, battery=battery,
                       scenario_names=scenario_names)
    return run_cells(cells, parallel=True, max_workers=max_workers,
                     engine=engine, executor=executor)


# ---------------------------------------------------------------------------
# Convenience: run everything at laptop scale (used by examples and docs)
# ---------------------------------------------------------------------------

def run_all_experiments(scale: str = "small") -> Dict[str, List[Dict[str, object]]]:
    """Run E1–E9 at a chosen scale and return {experiment id: rows}.

    ``scale="small"`` keeps every instance under a second; ``scale="paper"``
    uses the larger sweeps quoted in EXPERIMENTS.md (minutes, still
    laptop-friendly).
    """
    if scale == "small":
        settings = {
            "e1": dict(n=13, t=4, b_values=(3, 4)),
            "e2": dict(n=10, t=3, b_values=(3,)),
            "e3": dict(n=13, t=3, b_values=(2, 3)),
            "e4_ns": (14, 20),
            "e5_ns": (4, 7),
            "e6": dict(n=31, t=10, b_values=(3, 4, 5, 6)),
            "e7": dict(n=10, t=3, b=3),
            "e8": dict(n=31, t=10, b_values=(3, 4, 5)),
            "e9": dict(n=13, t=3),
        }
    else:
        settings = {
            "e1": dict(n=16, t=5, b_values=(3, 4, 5)),
            "e2": dict(n=13, t=4, b_values=(3, 4)),
            "e3": dict(n=17, t=4, b_values=(2, 3, 4)),
            "e4_ns": (14, 20, 32, 50),
            "e5_ns": (4, 7, 10),
            "e6": dict(n=61, t=20, b_values=(3, 4, 5, 6, 8, 10)),
            "e7": dict(n=13, t=4, b=3),
            "e8": dict(n=61, t=20, b_values=(3, 4, 5, 6, 8)),
            "e9": dict(n=13, t=3),
        }
    return {
        "E1-theorem1-hybrid": experiment_theorem1(**settings["e1"]),
        "E2-theorem2-algorithm-a": experiment_theorem2(**settings["e2"]),
        "E3-theorem3-algorithm-b": experiment_theorem3(**settings["e3"]),
        "E4-theorem4-algorithm-c": experiment_theorem4(settings["e4_ns"]),
        "E5-exponential-growth": experiment_exponential_growth(settings["e5_ns"]),
        "E6-tradeoff": experiment_tradeoff(**settings["e6"]),
        "E7-block-progress": experiment_block_progress(**settings["e7"]),
        "E8-dominance": experiment_dominance(**settings["e8"]),
        "E9-baselines": experiment_baselines(**settings["e9"]),
    }
