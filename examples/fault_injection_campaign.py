#!/usr/bin/env python3
"""Fault-injection campaign: every algorithm against every adversary.

Runs the full scenario battery (crash, silent, lying, equivocating-source,
stealth, …) against each of the paper's algorithms and the baselines at a
common configuration, and prints one row per (algorithm, scenario) with the
outcome and the observed costs.  This is the workload the paper's
introduction motivates: the same agreement problem under wildly different
failure behaviours.

Run:  python examples/fault_injection_campaign.py
"""

from repro import (AlgorithmASpec, AlgorithmBSpec, AlgorithmCSpec, ExponentialSpec,
                   HybridSpec, ProtocolConfig, run_agreement)
from repro.analysis import format_table
from repro.baselines import PhaseKingSpec
from repro.core.algorithm_b import algorithm_b_resilience
from repro.core.algorithm_c import algorithm_c_resilience
from repro.experiments import standard_scenarios


def campaign(n: int = 13, t: int = 3) -> None:
    protocols = [
        ("exponential", lambda: ExponentialSpec(), t),
        ("algorithm-a(b=3)", lambda: AlgorithmASpec(3), t),
        ("algorithm-b(b=2)", lambda: AlgorithmBSpec(2), min(t, algorithm_b_resilience(n))),
        ("algorithm-c", lambda: AlgorithmCSpec(), min(t, algorithm_c_resilience(n))),
        ("hybrid(b=3)", lambda: HybridSpec(3), t),
        ("phase-king", lambda: PhaseKingSpec(), min(t, (n - 1) // 4)),
    ]
    rows = []
    for name, factory, effective_t in protocols:
        if effective_t < 1:
            continue
        config = ProtocolConfig(n=n, t=effective_t, initial_value=1)
        for scenario in standard_scenarios(n, effective_t):
            try:
                result = run_agreement(factory(), config, scenario.faulty,
                                       scenario.adversary())
            except Exception as error:            # mis-parameterised combination
                rows.append({"protocol": name, "scenario": scenario.name,
                             "outcome": f"skipped ({error})"})
                continue
            rows.append({
                "protocol": name,
                "scenario": scenario.name,
                "faults": scenario.fault_count,
                "rounds": result.rounds,
                "max_msg_values": result.metrics.max_message_entries(),
                "agreement": result.agreement,
                "validity": result.validity,
                "detected": max((len(v) for v in result.discovered.values()),
                                default=0),
            })
    print(format_table(rows, title=f"Fault-injection campaign, n={n}"))
    failures = [row for row in rows
                if row.get("agreement") is False or row.get("validity") is False]
    print()
    print(f"{len(rows)} runs, {len(failures)} correctness violations")
    assert not failures


if __name__ == "__main__":
    campaign()
