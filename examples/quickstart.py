#!/usr/bin/env python3
"""Quickstart: reach Byzantine agreement with the hybrid algorithm.

Sets up 16 processors of which 5 are Byzantine — including the source, which
equivocates while its accomplices amplify the split — and runs the paper's
hybrid algorithm (Theorem 1) through the declarative façade: the run is
described as a plain-data, JSON-round-trippable ``RunRequest``, the planner
picks the fastest eligible executor, and the outcome comes back as a
structured ``RunReport``.  Despite the worst-case behaviour, every correct
processor decides the same value within the Main Theorem's round bound.

Run:  python examples/quickstart.py
"""

import json

from repro import RunRequest, execute, hybrid_parameters


def main() -> None:
    n, t, b = 16, 5, 3
    request = RunRequest(
        protocol="hybrid", protocol_params={"b": b}, n=n, t=t,
        initial_value=1,
        scenario="faulty-source-allies", battery="worst-case",
    )

    params = hybrid_parameters(n, t, b)
    print(f"hybrid(b={b}) on n={n}, t={t}")
    print(f"  phase A blocks: {list(params.a_blocks)}  (rounds 1..{params.k_ab})")
    print(f"  phase B blocks: {list(params.b_blocks)}  "
          f"(rounds {params.k_ab + 1}..{params.k_ab + params.k_bc})")
    print(f"  phase C rounds: {params.c_rounds}  (total {params.total_rounds} rounds)")
    print()

    # The request is plain data: it survives json round trips, so the same
    # description can be queued, shipped to a worker pool, or POSTed.
    wire = json.dumps(request.to_dict())
    report = execute(RunRequest.from_dict(json.loads(wire)))

    print(f"adversary          : {report.adversary}")
    print(f"faulty processors  : {list(report.faulty)} (source included)")
    print(f"engine             : {report.engine_resolved} "
          f"(requested {report.engine!r})")
    print(f"rounds executed    : {report.rounds}")
    print(f"agreement          : {report.agreement}")
    print(f"decision value     : {report.decision_value}")
    print(f"largest message    : {report.metrics['max_message_entries']} values")
    print(f"faults detected    : "
          f"{max(len(found) for found in report.discovered.values())} "
          f"(by the best-informed correct processor)")
    assert report.agreement
    assert report == type(report).from_dict(report.to_dict())


if __name__ == "__main__":
    main()
