#!/usr/bin/env python3
"""Quickstart: reach Byzantine agreement with the hybrid algorithm.

Sets up 16 processors of which 5 are Byzantine — including the source, which
equivocates while its accomplices amplify the split — and runs the paper's
hybrid algorithm (Theorem 1).  Despite the worst-case behaviour, every correct
processor decides the same value within the Main Theorem's round bound.

Run:  python examples/quickstart.py
"""

from repro import HybridSpec, ProtocolConfig, hybrid_parameters, run_agreement
from repro.adversary import EquivocatingSourceWithAlliesAdversary
from repro.runtime import choose_faulty


def main() -> None:
    n, t, b = 16, 5, 3
    config = ProtocolConfig(n=n, t=t, initial_value=1)
    faulty = choose_faulty(n, t, source_faulty=True)
    adversary = EquivocatingSourceWithAlliesAdversary()

    params = hybrid_parameters(n, t, b)
    print(f"hybrid(b={b}) on n={n}, t={t}")
    print(f"  phase A blocks: {list(params.a_blocks)}  (rounds 1..{params.k_ab})")
    print(f"  phase B blocks: {list(params.b_blocks)}  "
          f"(rounds {params.k_ab + 1}..{params.k_ab + params.k_bc})")
    print(f"  phase C rounds: {params.c_rounds}  (total {params.total_rounds} rounds)")
    print(f"  faulty processors: {sorted(faulty)} (source included)")
    print()

    result = run_agreement(HybridSpec(b), config, faulty, adversary)

    print(f"adversary          : {result.adversary}")
    print(f"rounds executed    : {result.rounds}")
    print(f"agreement          : {result.agreement}")
    print(f"decision value     : {result.decision_value}")
    print(f"largest message    : {result.metrics.max_message_entries()} values")
    print(f"faults detected    : "
          f"{max(len(found) for found in result.discovered.values())} "
          f"(by the best-informed correct processor)")
    assert result.agreement


if __name__ == "__main__":
    main()
