#!/usr/bin/env python3
"""Trace the shifting machinery round by round.

Runs Algorithm A(3) and the hybrid on the same adversarial execution
(an equivocating source with colluding accomplices) and prints, per round,
which phase the hybrid is in, how many faults the best-informed correct
processor has globally detected so far, and the preferred value recorded at
each shift — making the paper's "persistent value or new detected faults"
dichotomy visible on a concrete run.

Run:  python examples/block_progress_trace.py
"""

from repro import AlgorithmASpec, HybridSpec, ProtocolConfig, run_agreement
from repro.adversary import EquivocatingSourceWithAlliesAdversary
from repro.analysis import format_table
from repro.core.hybrid import hybrid_parameters
from repro.experiments import experiment_block_progress
from repro.runtime import choose_faulty


def trace_hybrid(n: int = 13, t: int = 4, b: int = 3) -> None:
    config = ProtocolConfig(n=n, t=t, initial_value=1)
    faulty = choose_faulty(n, t, source_faulty=True)
    result = run_agreement(HybridSpec(b), config, faulty,
                           EquivocatingSourceWithAlliesAdversary())
    params = hybrid_parameters(n, t, b)
    detections_per_round = {}
    for log in result.discovery_logs.values():
        for round_number, count in log.items():
            detections_per_round[round_number] = max(
                detections_per_round.get(round_number, 0), count)
    rows = []
    for round_number in range(1, result.rounds + 1):
        if round_number <= params.k_ab:
            phase = "A (resolve', fault discovery during conversion)"
        elif round_number <= params.k_ab + params.k_bc:
            phase = "B (resolve)"
        else:
            phase = "C (3-level tree with repetitions)"
        rows.append({
            "round": round_number,
            "phase": phase,
            "new_detections": detections_per_round.get(round_number, 0),
        })
    print(format_table(rows, title=f"Hybrid(b={b}) trace, n={n}, t={t}, "
                                   f"faulty={sorted(faulty)}"))
    print(f"decision: {result.decision_value}  (agreement={result.agreement})")
    print()


def algorithm_a_progress(n: int = 13, t: int = 4, b: int = 3) -> None:
    rows = experiment_block_progress(n=n, t=t, b=b)
    print(format_table(
        rows,
        columns=["scenario", "faults", "rounds", "agreement",
                 "total_detected_max", "detections_by_round"],
        title=f"Algorithm A({b}) block progress across worst-case scenarios"))


if __name__ == "__main__":
    trace_hybrid()
    algorithm_a_progress()
