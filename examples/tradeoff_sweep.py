#!/usr/bin/env python3
"""The rounds-versus-message-length trade-off and the dominance table.

Prints the two analytic figures of the paper's quantitative story at a
publication-scale parameterisation (n = 61, t = 20):

* the trade-off curve — for each message budget O(n^b), the rounds needed by
  the Exponential Algorithm, Algorithm A, Algorithm B, the hybrid, and the
  Coan-model comparison, plus the local-computation gap to Coan's families;
* the dominance table — how many rounds the hybrid saves over Algorithm A at
  every block parameter.

Run:  python examples/tradeoff_sweep.py
"""

from repro.analysis import format_table
from repro.core.algorithm_a import algorithm_a_resilience
from repro.experiments import experiment_dominance, experiment_tradeoff


def main(n: int = 61) -> None:
    t = algorithm_a_resilience(n)
    tradeoff = experiment_tradeoff(n=n, t=t, b_values=(2, 3, 4, 5, 6, 8, 10))
    print(format_table(tradeoff,
                       title=f"Rounds vs message length, n={n}, t={t} "
                             f"(blank cells: parameter out of range)"))
    print()
    dominance = experiment_dominance(n=n, t=t, b_values=(3, 4, 5, 6, 8))
    print(format_table(dominance, title="Hybrid vs Algorithm A (round savings)"))
    print()
    best = max(dominance, key=lambda row: row["saving"])
    print(f"Largest saving: {best['saving']} rounds at b={best['b']} "
          f"({best['rounds_hybrid']} vs {best['rounds_A']}; "
          f"the Exponential Algorithm needs {best['exponential_rounds']} rounds "
          f"but exponential-size messages).")


if __name__ == "__main__":
    main()
