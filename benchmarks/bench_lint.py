"""Lint — static-audit runtime over the whole source tree.

``repro lint`` gates CI, so its wall-clock cost is a budget the rest of
the pipeline pays on every push.  This benchmark times the three phases
separately — parsing + symbol-table construction (:class:`Project.load`),
the full 8-rule pass, and a single-rule pass (the marginal cost of adding
one analyzer) — so a rule that regresses from linear-walk to quadratic
shows up as a number, not as a slower CI.

Running ``python benchmarks/bench_lint.py`` merges a ``"lint"`` section
into ``BENCH_perf.json`` (every other section — the engine table, the
serve latencies, the mc throughput — is left untouched).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.lint import run_lint
from repro.lint.symbols import Project

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"
LINT_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Repetitions per measurement: the tree parses in well under a second,
#: so a small repeat count smooths scheduler noise without slowing CI.
REPEATS = 5


def best_of(fn) -> float:
    """The fastest of :data:`REPEATS` timed calls, in seconds."""
    best = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def main() -> None:
    result = run_lint(LINT_ROOT, package="repro")
    assert result.exit_code == 0, "the tree must lint clean before timing"

    parse_seconds = best_of(
        lambda: Project.load(LINT_ROOT, package="repro"))
    full_seconds = best_of(
        lambda: run_lint(LINT_ROOT, package="repro"))
    single_seconds = best_of(
        lambda: run_lint(LINT_ROOT, package="repro",
                         rules=["determinism/set-iteration"]))

    section = {
        "modules": result.modules_checked,
        "rules": len(result.rules),
        "findings_waived": result.counts["waived"],
        "parse_and_symbols_seconds": round(parse_seconds, 3),
        "full_pass_seconds": round(full_seconds, 3),
        "single_rule_seconds": round(single_seconds, 3),
        "modules_per_second": round(result.modules_checked / full_seconds,
                                    1),
    }
    print(f"parse+symbols: {parse_seconds:.3f}s  "
          f"full 8-rule pass: {full_seconds:.3f}s  "
          f"single rule: {single_seconds:.3f}s  "
          f"({section['modules_per_second']} modules/s)")

    recording = {}
    if BENCH_PATH.exists():
        recording = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    recording["lint"] = section
    BENCH_PATH.write_text(json.dumps(recording, indent=2) + "\n",
                          encoding="utf-8")
    print(f"wrote the lint section of {BENCH_PATH}")


if __name__ == "__main__":
    main()
