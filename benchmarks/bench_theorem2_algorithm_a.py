"""E2 — Theorem 2: Algorithm A(b).

Regenerates the Theorem 2 row for each block parameter: rounds
``t + 2 + 2⌊(t−1)/(b−2)⌋``, messages ``O(n^b)`` values, agreement under the
full scenario battery at the optimal resilience ``n ≥ 3t + 1``.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.core.algorithm_a import algorithm_a_rounds
from repro.experiments import experiment_theorem2


def test_theorem2_algorithm_a_table(benchmark):
    rows = run_once(benchmark,
                    lambda: experiment_theorem2(n=13, t=4, b_values=(3, 4)))
    print()
    print(format_table(rows, title="E2 / Theorem 2 — Algorithm A (n=13, t=4)"))
    assert rows
    for row in rows:
        assert row["all_scenarios_agree"]
        assert row["measured_rounds"] == row["rounds_bound"]
        assert row["measured_max_entries"] <= row["max_message_entries_bound"]


def test_theorem2_round_formula_shape(benchmark):
    def table():
        return [{"t": t, "b": b, "rounds": algorithm_a_rounds(t, b)}
                for t in (5, 10, 20) for b in range(3, min(6, t) + 1)]

    rows = run_once(benchmark, table)
    print()
    print(format_table(rows, title="E2 — Algorithm A rounds vs (t, b)"))
    # Rounds shrink monotonically as the block parameter grows (at fixed t).
    for t in (5, 10, 20):
        series = [row["rounds"] for row in rows if row["t"] == t]
        assert series == sorted(series, reverse=True)
