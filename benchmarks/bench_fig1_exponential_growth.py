"""E5 — Figure 1 / Section 3: the Exponential Algorithm's growth.

Figure 1 draws the Information Gathering Tree; the accompanying text bounds
the round-``h`` tree at ``O(n^{h−1})`` leaves and hence messages of
``O(n^{h−1})`` values in round ``h + 1``.  This benchmark regenerates that
growth curve — measured largest message and local computation per processor
as ``n`` (and ``t = ⌊(n−1)/3⌋``) grows — and checks it against the
falling-factorial bound.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.core.exponential import exponential_max_message_entries
from repro.core.sequences import count_sequences_of_length
from repro.experiments import experiment_exponential_growth


def test_exponential_growth_table(benchmark):
    rows = run_once(benchmark, lambda: experiment_exponential_growth((4, 7, 10)))
    print()
    print(format_table(rows, title="E5 / Figure 1 — Exponential Algorithm growth"))
    assert rows
    entries = [row["measured_max_entries"] for row in rows]
    computation = [row["measured_max_computation"] for row in rows]
    # Growth is monotone and stays within the falling-factorial bound.
    assert entries == sorted(entries)
    assert computation == sorted(computation)
    for row in rows:
        assert row["measured_max_entries"] <= row["max_message_entries_bound"]
        assert row["all_scenarios_agree"]


def test_tree_level_sizes_match_formula(benchmark):
    def table():
        rows = []
        for n in (5, 7, 9, 11):
            for level in range(1, 5):
                rows.append({
                    "n": n,
                    "level": level,
                    "nodes": count_sequences_of_length(level, n),
                })
        return rows

    rows = run_once(benchmark, table)
    print()
    print(format_table(rows, title="E5 — Information Gathering Tree level sizes"))
    # Level ℓ has (n−1)(n−2)···(n−ℓ+1) nodes: the O(n^{ℓ−1}) blow-up of Fig. 1.
    for row in rows:
        n, level = row["n"], row["level"]
        expected = 1
        for i in range(1, level):
            expected *= n - i
        assert row["nodes"] == expected
    # Message bound equals the leaf count of the level actually broadcast.
    assert exponential_max_message_entries(9, 3) == 8 * 7
