"""Ablation — what the shifting machinery's ingredients buy.

DESIGN.md calls out three design choices worth isolating:

* **Fault discovery + masking** (vs the plain PSL information gathering):
  without them a shifted execution has no progress guarantee; with them the
  lying scenarios produce global detections.
* **Conversion function** (`resolve` vs `resolve'`): both are correct for the
  Exponential Algorithm (the paper's remark after Claim 2), but `resolve'` is
  what lets Algorithm A keep the optimal resilience while shifting.
* **Block parameter b**: the knob that trades rounds for message size.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.core.algorithm_a import algorithm_a_max_message_entries, algorithm_a_rounds
from repro.core.exponential import ExponentialSpec
from repro.core.protocol import ProtocolConfig
from repro.experiments.workloads import worst_case_scenarios
from repro.runtime.simulation import run_agreement


def test_ablation_fault_discovery_enables_detection(benchmark):
    """Same executions with discovery on (Exponential) and off (PSL): decisions
    agree, costs agree, but only the former ever learns who is faulty."""
    from repro.baselines import PeaseShostakLamportSpec

    def run():
        config = ProtocolConfig(n=10, t=3, initial_value=1)
        rows = []
        for scenario in worst_case_scenarios(10, 3):
            with_discovery = run_agreement(ExponentialSpec(), config,
                                           scenario.faulty, scenario.adversary())
            without = run_agreement(PeaseShostakLamportSpec(), config,
                                    scenario.faulty, scenario.adversary())
            rows.append({
                "scenario": scenario.name,
                "decision_with": with_discovery.decision_value,
                "decision_without": without.decision_value,
                "detected_with": max(len(v) for v in with_discovery.discovered.values()),
                "detected_without": max(len(v) for v in without.discovered.values()),
            })
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(rows, title="Ablation — fault discovery on/off (n=10, t=3)"))
    assert all(row["decision_with"] == row["decision_without"] for row in rows)
    assert all(row["detected_without"] == 0 for row in rows)
    assert any(row["detected_with"] > 0 for row in rows)


def test_ablation_conversion_function(benchmark):
    """resolve vs resolve' on the Exponential Algorithm: identical decisions."""
    def run():
        config = ProtocolConfig(n=10, t=3, initial_value=1)
        rows = []
        for scenario in worst_case_scenarios(10, 3):
            majority = run_agreement(ExponentialSpec("resolve"), config,
                                     scenario.faulty, scenario.adversary())
            threshold = run_agreement(ExponentialSpec("resolve_prime"), config,
                                      scenario.faulty, scenario.adversary())
            rows.append({
                "scenario": scenario.name,
                "resolve_decision": majority.decision_value,
                "resolve_prime_decision": threshold.decision_value,
                "agreement_both": majority.agreement and threshold.agreement,
            })
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(rows, title="Ablation — resolve vs resolve' (n=10, t=3)"))
    assert all(row["agreement_both"] for row in rows)


def test_ablation_block_parameter(benchmark):
    """The b knob: rounds fall, message budget rises (Algorithm A, analytic)."""
    def table():
        n, t = 31, 10
        return [{"b": b,
                 "rounds": algorithm_a_rounds(t, b),
                 "max_message_entries": algorithm_a_max_message_entries(n, b)}
                for b in (3, 4, 5, 6, 8, 10)]

    rows = run_once(benchmark, table)
    print()
    print(format_table(rows, title="Ablation — block parameter b (n=31, t=10)"))
    rounds = [row["rounds"] for row in rows]
    sizes = [row["max_message_entries"] for row in rows]
    assert rounds == sorted(rounds, reverse=True)
    assert sizes == sorted(sizes)
