"""E3 — Theorem 3: Algorithm B(b).

Regenerates the Theorem 3 row for each block parameter: rounds
``t + 1 + ⌊(t−1)/(b−1)⌋``, messages ``O(n^b)`` values, resilience
``n ≥ 4t + 1``, agreement under the full scenario battery.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.core.algorithm_a import algorithm_a_rounds
from repro.core.algorithm_b import algorithm_b_rounds
from repro.experiments import experiment_theorem3


def test_theorem3_algorithm_b_table(benchmark):
    rows = run_once(benchmark,
                    lambda: experiment_theorem3(n=13, t=3, b_values=(2, 3)))
    print()
    print(format_table(rows, title="E3 / Theorem 3 — Algorithm B (n=13, t=3)"))
    assert rows
    for row in rows:
        assert row["all_scenarios_agree"]
        assert row["measured_rounds"] == row["rounds_bound"]
        assert row["measured_max_entries"] <= row["max_message_entries_bound"]


def test_theorem3_needs_fewer_rounds_than_theorem2(benchmark):
    def table():
        return [{"t": t, "b": b,
                 "rounds_B": algorithm_b_rounds(t, b),
                 "rounds_A": algorithm_a_rounds(t, b)}
                for t in (5, 10, 20) for b in range(3, min(6, t) + 1)]

    rows = run_once(benchmark, table)
    print()
    print(format_table(rows, title="E3 — Algorithm B vs Algorithm A rounds"))
    # The lower-resilience family makes progress faster: B never needs more
    # rounds than A at the same (t, b).
    assert all(row["rounds_B"] <= row["rounds_A"] for row in rows)
