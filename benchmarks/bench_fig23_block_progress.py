"""E7 — Figures 2–3: the block structure and its progress dichotomy.

Figures 2 and 3 give the pseudocode of Algorithm B and of the hybrid; the
correctness arguments rest on a per-block dichotomy: every block either
produces a persistent value or globally detects a batch of new faults, which
are masked from then on.  This benchmark makes that dichotomy observable: it
runs Algorithm A under the worst-case adversaries and reports, per scenario,
how many faults were detected and in which rounds — and it checks that
whenever lying actually happens under a faulty source, detections occur.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.experiments import experiment_block_progress


def test_block_progress_table(benchmark):
    rows = run_once(benchmark, lambda: experiment_block_progress(n=13, t=4, b=3))
    print()
    print(format_table(
        rows,
        columns=["scenario", "faults", "rounds", "agreement",
                 "total_detected_max", "detections_by_round"],
        title="E7 / Figures 2–3 — fault detections per round, Algorithm A(3), n=13, t=4"))
    assert rows
    assert all(row["agreement"] for row in rows)
    # The aggressively lying scenarios must trigger global fault detection.
    lying = [row for row in rows if row["scenario"] in
             ("faulty-source-allies", "minimal-exposure")]
    assert lying
    assert all(row["total_detected_max"] >= 1 for row in lying)
    # Detection never exceeds the number of actually faulty processors.
    assert all(row["total_detected_max"] <= row["faults"] for row in rows)


def test_hybrid_phase_structure(benchmark):
    def table():
        from repro.core.hybrid import hybrid_parameters
        rows = []
        for n, t, b in ((13, 4, 3), (16, 5, 3), (31, 10, 4)):
            params = hybrid_parameters(n, t, b)
            rows.append({
                "n": n, "t": t, "b": b,
                "A_blocks": list(params.a_blocks),
                "B_blocks": list(params.b_blocks),
                "C_rounds": params.c_rounds,
                "total_rounds": params.total_rounds,
            })
        return rows

    rows = run_once(benchmark, table)
    print()
    print(format_table(rows, title="E7 / Figure 3 — hybrid phase structure"))
    for row in rows:
        assert row["total_rounds"] == (1 + sum(row["A_blocks"]) + sum(row["B_blocks"])
                                       + row["C_rounds"])
