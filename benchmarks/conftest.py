"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it runs the
corresponding experiment from :mod:`repro.experiments.harness` exactly once
under pytest-benchmark (``pedantic`` with one round — the interesting output
is the table, not the wall-clock), prints the "paper bound vs measured" rows,
and asserts the shape claims (agreement everywhere, measured costs within the
theorem's bounds, the right growth direction).
"""

from __future__ import annotations


def run_once(benchmark, fn):
    """Execute *fn* exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
