"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it runs the
corresponding experiment from :mod:`repro.experiments.harness` exactly once
under pytest-benchmark (``pedantic`` with one round — the interesting output
is the table, not the wall-clock), prints the "paper bound vs measured" rows,
and asserts the shape claims (agreement everywhere, measured costs within the
theorem's bounds, the right growth direction).

The perf benchmark (``bench_perf.py``) and its smoke test
(``test_perf_smoke.py``) share the recorded-baseline helpers below:
``BENCH_perf.json`` at the repository root is the perf trajectory's record,
and the smoke test compares a fresh small-grid measurement against it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PERF_PATH = REPO_ROOT / "BENCH_perf.json"


def run_once(benchmark, fn):
    """Execute *fn* exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def load_recorded_perf() -> Optional[Dict[str, object]]:
    """The recorded ``BENCH_perf.json`` report, or ``None`` when absent."""
    if not BENCH_PERF_PATH.exists():
        return None
    try:
        return json.loads(BENCH_PERF_PATH.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def recorded_perf_row(report: Dict[str, object], protocol: str,
                      n: int, t: int) -> Optional[Dict[str, object]]:
    """Look up one recorded perf row by (protocol label, n, t)."""
    for row in report.get("rows", []):
        if (row.get("protocol"), row.get("n"), row.get("t")) == (protocol, n, t):
            return row
    return None
