"""Serve — cache-hit vs cold-run latency of the agreement service.

The result cache's value proposition is a number: how much faster is the
*second* identical query?  This benchmark measures both sides on the
headline cell (Exponential at ``n=13, t=4``, the ``bench_perf`` acceptance
cell), through the full service path — admission dry-run, digest, cache
lookup, journal append, supervised execution:

* **cold run** — an empty cache: admission + journaling + one supervised
  execution (best of ``COLD_REPS``, cache cleared between repetitions);
* **cache hit** — the same request again: admission + digest + lookup,
  no execution at all (best of ``HIT_REPS``);
* **HTTP cache hit** — the hit measured through the asyncio frontend,
  loopback TCP and HTTP parsing included.

Running ``python benchmarks/bench_serve.py`` merges a ``"serve"`` section
into ``BENCH_perf.json`` (the rest of the recording — the engine table —
is left untouched), so the serving-layer trajectory stays attributable
alongside the engine trajectory.
"""

from __future__ import annotations

import http.client
import json
import tempfile
import threading
import time
from pathlib import Path

from repro.api import RunRequest
from repro.serve import (AgreementService, HttpFrontend, ResultCache,
                         ServeJournal, request_digest)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

#: The acceptance-criterion cell, matching bench_perf's headline.
HEADLINE = ("exponential", 13, 4)

COLD_REPS = 3
HIT_REPS = 50
HTTP_REPS = 20


def headline_request() -> RunRequest:
    protocol, n, t = HEADLINE
    return RunRequest(protocol=protocol, n=n, t=t, initial_value=1,
                      scenario="faulty-source-allies", battery="worst-case",
                      seed=0)


def bench_service(tmp: str) -> dict:
    request = headline_request()
    journal = ServeJournal(str(Path(tmp) / "serve.jsonl"))
    service = AgreementService(cache=ResultCache(str(Path(tmp) / "cache")),
                               journal=journal)
    service.start()

    cold = []
    digest = request_digest(request)
    for _ in range(COLD_REPS):
        service.cache._entries.pop(digest, None)  # force re-execution
        cache_file = Path(tmp) / "cache" / f"{digest}.json"
        if cache_file.exists():
            cache_file.unlink()
        start = time.perf_counter()
        result = service.handle(request)
        cold.append(time.perf_counter() - start)
        assert not result.cached

    hits = []
    for _ in range(HIT_REPS):
        start = time.perf_counter()
        result = service.handle(request)
        hits.append(time.perf_counter() - start)
        assert result.cached
    service.close()
    return {"cold_run_seconds": round(min(cold), 6),
            "cache_hit_seconds": round(min(hits), 6)}


def bench_http(tmp: str) -> dict:
    service = AgreementService(
        cache=ResultCache(str(Path(tmp) / "http-cache")))
    frontend = HttpFrontend(service, port=0, max_queue=8, workers=1,
                            drain_deadline=5.0)
    thread = threading.Thread(target=frontend.run, daemon=True)
    thread.start()
    if not frontend.ready.wait(30):
        raise RuntimeError("serve frontend did not come up")
    body = json.dumps(headline_request().to_dict())
    try:
        timings = []
        for rep in range(HTTP_REPS + 1):
            conn = http.client.HTTPConnection("127.0.0.1", frontend.port,
                                              timeout=120)
            start = time.perf_counter()
            conn.request("POST", "/run", body=body)
            payload = json.loads(conn.getresponse().read())
            elapsed = time.perf_counter() - start
            conn.close()
            if rep > 0:  # rep 0 is the cold populate, not a hit
                assert payload["cached"]
                timings.append(elapsed)
    finally:
        frontend.stop()
        thread.join(30)
    return {"http_cache_hit_seconds": round(min(timings), 6)}


def main() -> None:
    protocol, n, t = HEADLINE
    with tempfile.TemporaryDirectory() as tmp:
        section = {"protocol": protocol, "n": n, "t": t,
                   "scenario": "faulty-source-allies",
                   "cold_reps": COLD_REPS, "hit_reps": HIT_REPS,
                   **bench_service(tmp), **bench_http(tmp)}
    section["hit_speedup"] = round(
        section["cold_run_seconds"] / section["cache_hit_seconds"], 2)
    recording = {}
    if BENCH_PATH.exists():
        recording = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    recording["serve"] = section
    BENCH_PATH.write_text(json.dumps(recording, indent=2) + "\n",
                          encoding="utf-8")
    print(json.dumps(section, indent=2))
    print(f"wrote the serve section of {BENCH_PATH}")


if __name__ == "__main__":
    main()
