"""Perf smoke: the fast engine must stay fast and must match the oracle.

Collected by the tier-1 pytest run (unlike the ``bench_*`` table benchmarks,
which only run under pytest-benchmark), so every change to the engine is
gated on:

1. **Oracle agreement** — on a small ``(n, t)`` grid the fast engine produces
   the same decisions, discoveries, and metrics (including computation
   units) as the reference engine, scenario by scenario.
2. **Relative speed** — the fast engine is not slower than 1.5× the
   reference engine on the same grid (in practice it is several times
   *faster*; 1.5× headroom keeps the assert robust to scheduler noise).
3. **Recorded baseline** — when ``BENCH_perf.json`` exists, the recording
   itself must show the acceptance-gate speedup (≥ 5× on the Exponential
   headline cell), and with ``REPRO_PERF_STRICT=1`` a fresh measurement of
   the smoke grid must come in under 1.5× its recorded fast-engine baseline
   (opt-in because absolute times are machine-dependent).
"""

from __future__ import annotations

import os
import time

import pytest

from conftest import load_recorded_perf, recorded_perf_row

from repro.core.algorithm_b import AlgorithmBSpec
from repro.core.algorithm_c import AlgorithmCSpec
from repro.core.engine import use_engine
from repro.core.exponential import ExponentialSpec
from repro.core.protocol import ProtocolConfig
from repro.experiments.workloads import worst_case_scenarios
from repro.runtime.simulation import run_agreement

#: The small grid: one representative of each tree flavour / conversion.
SMOKE_CELLS = [
    ("exponential", ExponentialSpec, (), 10, 3),
    ("algorithm-b(b=2)", AlgorithmBSpec, (2,), 9, 2),
    ("algorithm-c", AlgorithmCSpec, (), 14, 2),
]


def _run(spec_cls, args, n, t, engine, scenario):
    config = ProtocolConfig(n=n, t=t, initial_value=1)
    with use_engine(engine):
        start = time.perf_counter()
        result = run_agreement(spec_cls(*args), config, scenario.faulty,
                               scenario.adversary())
        elapsed = time.perf_counter() - start
    return result, elapsed


@pytest.mark.parametrize("label, spec_cls, args, n, t", SMOKE_CELLS)
def test_fast_engine_matches_oracle(label, spec_cls, args, n, t):
    for scenario in worst_case_scenarios(n, t):
        fast, _ = _run(spec_cls, args, n, t, "fast", scenario)
        reference, _ = _run(spec_cls, args, n, t, "reference", scenario)
        assert fast.decisions == reference.decisions, (label, scenario.name)
        assert fast.discovered == reference.discovered, (label, scenario.name)
        assert fast.metrics.summary() == reference.metrics.summary(), (
            label, scenario.name)


@pytest.mark.parametrize("label, spec_cls, args, n, t", SMOKE_CELLS)
def test_fast_engine_not_slower_than_reference(label, spec_cls, args, n, t):
    scenario = worst_case_scenarios(n, t)[0]
    fast_s = min(_run(spec_cls, args, n, t, "fast", scenario)[1]
                 for _ in range(3))
    reference_s = min(_run(spec_cls, args, n, t, "reference", scenario)[1]
                      for _ in range(3))
    assert fast_s <= 1.5 * reference_s, (
        f"{label}: fast engine took {fast_s:.4f}s vs reference "
        f"{reference_s:.4f}s (> 1.5x)")


def test_recorded_baseline_shows_acceptance_speedup():
    report = load_recorded_perf()
    if report is None:
        pytest.skip("BENCH_perf.json not recorded yet (run benchmarks/bench_perf.py)")
    headline = report.get("headline")
    assert headline is not None, "recorded report lacks the headline cell"
    assert headline["speedup"] >= 5, (
        f"recorded Exponential n={headline['n']} t={headline['t']} speedup "
        f"{headline['speedup']}x is below the 5x acceptance gate")


def test_fresh_measurement_within_recorded_baseline():
    if os.environ.get("REPRO_PERF_STRICT") != "1":
        pytest.skip("strict wall-clock comparison is opt-in (REPRO_PERF_STRICT=1)")
    report = load_recorded_perf()
    if report is None:
        pytest.skip("BENCH_perf.json not recorded yet")
    for label, spec_cls, args, n, t in SMOKE_CELLS:
        recorded = recorded_perf_row(report, label, n, t)
        if recorded is None:
            continue
        scenario = worst_case_scenarios(n, t)[0]
        fresh = min(_run(spec_cls, args, n, t, "fast", scenario)[1]
                    for _ in range(3))
        assert fresh <= 1.5 * recorded["fast_seconds"], (
            f"{label} at (n={n}, t={t}): fresh fast-engine time {fresh:.4f}s "
            f"exceeds 1.5x the recorded baseline {recorded['fast_seconds']}s")
