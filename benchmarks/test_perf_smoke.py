"""Perf smoke: the array engines must stay fast and must match the oracle.

Collected by the tier-1 pytest run (unlike the ``bench_*`` table benchmarks,
which only run under pytest-benchmark), so every change to an engine is
gated on:

1. **Oracle agreement** — on a small ``(n, t)`` grid the fast engine *and*
   the numpy engine (when numpy is installed) produce the same decisions,
   discoveries, and metrics (including computation units) as the reference
   engine, scenario by scenario.
2. **Relative speed** — the fast engine is not slower than 1.5× the
   reference engine on the same grid, and the numpy engine is not slower
   than 1.2× the fast engine on the headline-sized Exponential cell
   (``n=13, t=4``).  The numpy gate runs at that size on purpose: ndarray
   creation overhead makes numpy *slower* on tiny levels (tens of nodes) —
   its reason to exist is the large-``(n, t)`` regime, where it is several
   times faster, so that is where the regression gate sits.  The batched
   whole-run executor, whose reason to exist is erasing exactly that
   per-call overhead, must be ≥ 1.5× the per-processor numpy engine at the
   headline cell in the recording — live, batched must not be slower than
   1.1× numpy there and must be observationally identical to it
   (decisions, discoveries, metrics spot check).
3. **Recorded baseline** — when ``BENCH_perf.json`` exists, the recording
   itself must show the acceptance-gate speedups (≥ 5× fast-vs-reference on
   the Exponential headline cell, ≥ 2× numpy-vs-fast, and — when the
   recording includes the batched executor — ≥ 1.5× batched-vs-numpy at the
   headline plus no small-level crossover: batched not slower than fast at
   the Exponential ``n=7, t=2`` cell), and with ``REPRO_PERF_STRICT=1`` a
   fresh measurement of the smoke grid must come in under 1.5× its recorded
   fast-engine baseline (opt-in because absolute times are
   machine-dependent).  When the recording times the **sharded run
   executor**, its grid must extend at least two processors past the
   largest single-process Exponential cell, inside the recorded per-cell
   budget, and must beat the single-process batched engine in the
   cache-bound ``n ≥ 16`` regime.

Every numpy assertion auto-skips when numpy is unavailable, so tier-1 stays
green on bare environments.
"""

from __future__ import annotations

import os
import time

import pytest

from conftest import load_recorded_perf, recorded_perf_row

from repro.api import RunRequest, execute
from repro.core.algorithm_b import AlgorithmBSpec
from repro.core.algorithm_c import AlgorithmCSpec
from repro.core.engine import numpy_available, use_engine
from repro.core.exponential import ExponentialSpec
from repro.core.protocol import ProtocolConfig
from repro.experiments.workloads import worst_case_scenarios
from repro.runtime.simulation import run_agreement

#: The small grid: one representative of each tree flavour / conversion.
SMOKE_CELLS = [
    ("exponential", ExponentialSpec, (), 10, 3),
    ("algorithm-b(b=2)", AlgorithmBSpec, (2,), 9, 2),
    ("algorithm-c", AlgorithmCSpec, (), 14, 2),
]

#: Where the numpy-vs-fast speed gate runs (small levels favour fast).
NUMPY_GATE_CELL = ("exponential", ExponentialSpec, (), 13, 4)

ARRAY_ENGINES = [
    "fast",
    pytest.param("numpy", marks=pytest.mark.skipif(
        not numpy_available(), reason="numpy not installed")),
]


def _run(spec_cls, args, n, t, engine, scenario):
    config = ProtocolConfig(n=n, t=t, initial_value=1)
    batched = engine == "batched"
    with use_engine("numpy" if batched else engine):
        start = time.perf_counter()
        result = run_agreement(spec_cls(*args), config, scenario.faulty,
                               scenario.adversary(), batched=batched)
        elapsed = time.perf_counter() - start
    return result, elapsed


@pytest.mark.parametrize("engine", ARRAY_ENGINES)
@pytest.mark.parametrize("label, spec_cls, args, n, t", SMOKE_CELLS)
def test_array_engine_matches_oracle(label, spec_cls, args, n, t, engine):
    for scenario in worst_case_scenarios(n, t):
        candidate, _ = _run(spec_cls, args, n, t, engine, scenario)
        reference, _ = _run(spec_cls, args, n, t, "reference", scenario)
        assert candidate.decisions == reference.decisions, (label, scenario.name)
        assert candidate.discovered == reference.discovered, (label, scenario.name)
        assert candidate.metrics.summary() == reference.metrics.summary(), (
            label, scenario.name)


@pytest.mark.parametrize("label, spec_cls, args, n, t", SMOKE_CELLS)
def test_fast_engine_not_slower_than_reference(label, spec_cls, args, n, t):
    scenario = worst_case_scenarios(n, t)[0]
    fast_s = min(_run(spec_cls, args, n, t, "fast", scenario)[1]
                 for _ in range(3))
    reference_s = min(_run(spec_cls, args, n, t, "reference", scenario)[1]
                      for _ in range(3))
    assert fast_s <= 1.5 * reference_s, (
        f"{label}: fast engine took {fast_s:.4f}s vs reference "
        f"{reference_s:.4f}s (> 1.5x)")


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_batched_matches_numpy_and_beats_it_at_scale():
    """Observational-identity spot check + the 1.5× batched gate."""
    label, spec_cls, args, n, t = NUMPY_GATE_CELL
    scenario = worst_case_scenarios(n, t)[0]
    batched_result, _ = _run(spec_cls, args, n, t, "batched", scenario)
    numpy_result, _ = _run(spec_cls, args, n, t, "numpy", scenario)
    assert batched_result.decisions == numpy_result.decisions
    assert batched_result.discovered == numpy_result.discovered
    assert batched_result.discovery_logs == numpy_result.discovery_logs
    assert (batched_result.metrics.summary()
            == numpy_result.metrics.summary())
    batched_s = min(_run(spec_cls, args, n, t, "batched", scenario)[1]
                    for _ in range(3))
    numpy_s = min(_run(spec_cls, args, n, t, "numpy", scenario)[1]
                  for _ in range(3))
    # Tolerance-style live bound (like the numpy-vs-fast gate below); the
    # strict >= 1.5x acceptance ratio is enforced deterministically against
    # the recorded BENCH_perf.json, where machine load cannot flake it.
    assert batched_s <= 1.1 * numpy_s, (
        f"{label} (n={n}, t={t}): batched executor took {batched_s:.4f}s vs "
        f"per-processor numpy {numpy_s:.4f}s (> 1.1x); whole-run batching "
        f"regressed at the headline cell")


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_facade_auto_resolves_to_batched_at_headline(monkeypatch):
    """The façade path must reach the batched executor, not just run.

    ``engine="auto"`` on the headline Exponential cell has to resolve to the
    whole-run batched executor (this is what makes the harness's
    ``execute_many`` sweeps compound batching with pool parallelism), and the
    report's run metadata is the proof.
    """
    monkeypatch.delenv("REPRO_EIG_ENGINE", raising=False)
    label, _, _, n, t = NUMPY_GATE_CELL
    report = execute(RunRequest(protocol=label, n=n, t=t, initial_value=1,
                                scenario="faulty-source-allies",
                                battery="worst-case", engine="auto"))
    assert report.engine == "auto"
    assert report.engine_resolved == "batched", (
        f"auto resolved to {report.engine_resolved!r} on the eligible "
        f"headline cell; the planner lost the batched path")
    assert report.agreement


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_numpy_engine_not_slower_than_fast_at_scale():
    label, spec_cls, args, n, t = NUMPY_GATE_CELL
    scenario = worst_case_scenarios(n, t)[0]
    numpy_s = min(_run(spec_cls, args, n, t, "numpy", scenario)[1]
                  for _ in range(3))
    fast_s = min(_run(spec_cls, args, n, t, "fast", scenario)[1]
                 for _ in range(3))
    assert numpy_s <= 1.2 * fast_s, (
        f"{label} (n={n}, t={t}): numpy engine took {numpy_s:.4f}s vs fast "
        f"{fast_s:.4f}s (> 1.2x); the vectorized backend regressed at scale")


def test_recorded_baseline_shows_acceptance_speedup():
    report = load_recorded_perf()
    if report is None:
        pytest.skip("BENCH_perf.json not recorded yet (run benchmarks/bench_perf.py)")
    headline = report.get("headline")
    assert headline is not None, "recorded report lacks the headline cell"
    if headline.get("speedup") is None:
        # A partial recording (bench_perf.py --engine subset) carries no
        # fast-vs-reference ratio to gate on.
        pytest.skip("recorded BENCH_perf.json lacks the fast-vs-reference "
                    "headline (partial --engine recording)")
    assert headline["speedup"] >= 5, (
        f"recorded Exponential n={headline['n']} t={headline['t']} speedup "
        f"{headline['speedup']}x is below the 5x acceptance gate")
    if "numpy" in report.get("engines", []) and headline.get(
            "numpy_vs_fast") is not None:
        assert headline["numpy_vs_fast"] >= 2, (
            f"recorded numpy-vs-fast headline speedup "
            f"{headline['numpy_vs_fast']}x is below the 2x acceptance gate")
    if "batched" in report.get("engines", []) and headline.get(
            "batched_vs_numpy") is not None:
        # A partial --engine recording may time batched without numpy and
        # carries no ratio to gate on, like the numpy branch above.
        assert headline["batched_vs_numpy"] >= 1.5, (
            f"recorded batched-vs-numpy headline speedup "
            f"{headline['batched_vs_numpy']}x is below the 1.5x acceptance "
            f"gate")


def test_recorded_baseline_shows_no_small_level_crossover():
    """Recorded batched time must not lose to fast at Exponential n=7,t=2."""
    report = load_recorded_perf()
    if report is None:
        pytest.skip("BENCH_perf.json not recorded yet (run benchmarks/bench_perf.py)")
    if "batched" not in report.get("engines", []):
        pytest.skip("recorded BENCH_perf.json does not time the batched "
                    "executor (partial --engine recording or no numpy)")
    row = recorded_perf_row(report, "exponential", 7, 2)
    assert row is not None, "recording lacks the Exponential n=7,t=2 cell"
    ratio = row.get("batched_vs_fast")
    if ratio is None:
        # A partial --engine recording may time batched without fast and
        # carries no ratio to gate on.
        pytest.skip("recorded Exponential n=7,t=2 cell lacks the "
                    "batched-vs-fast ratio (partial --engine recording)")
    assert ratio >= 1, (
        f"recorded batched executor is {ratio}x the fast engine at "
        f"Exponential n=7,t=2 — the small-level crossover is back")


def test_recorded_sharded_backend_extends_the_grid():
    """The sharded recording must reach past the single-process grid.

    The sharded run executor's acceptance claim: it completes an Exponential
    cell at an ``n`` at least 2 larger than the largest single-process cell
    of the classic grid, inside the recording's per-cell wall-clock budget —
    and it beats the single-process batched engine in the cache-bound
    ``n ≥ 16`` regime it exists for.
    """
    report = load_recorded_perf()
    if report is None:
        pytest.skip("BENCH_perf.json not recorded yet (run benchmarks/bench_perf.py)")
    if "sharded" not in report.get("engines", []):
        pytest.skip("recorded BENCH_perf.json does not time the sharded "
                    "backend (partial --engine recording or no numpy)")
    budget = report.get("large_cell_budget_seconds")
    assert budget, "sharded recording lacks its per-cell wall-clock budget"
    sharded_rows = [row for row in report.get("rows", [])
                    if row.get("protocol") == "exponential"
                    and "sharded_seconds" in row]
    assert sharded_rows, "sharded mode recorded but no sharded cells exist"
    classic = max(row["n"] for row in report["rows"]
                  if row.get("protocol") == "exponential"
                  and "reference_seconds" in row)
    frontier = max(row["n"] for row in sharded_rows)
    assert frontier >= classic + 2, (
        f"sharded grid stops at n={frontier}; the single-process grid "
        f"already reaches n={classic}")
    for row in sharded_rows:
        assert row["sharded_seconds"] <= budget, (
            f"recorded sharded Exponential n={row['n']} t={row['t']} took "
            f"{row['sharded_seconds']}s, over the {budget}s budget")
        if (row["n"] >= 16 and row.get("sharded_vs_batched") is not None
                and (report.get("cpu_count") or 1) >= 2):
            # On a single-CPU recording box the backend pays full claims
            # serialization with zero parallel compute — the win needs
            # cores; there the budget and frontier assertions above are the
            # acceptance anchor.
            assert row["sharded_vs_batched"] >= 1, (
                f"sharded backend is {row['sharded_vs_batched']}x the "
                f"single-process batched engine at n={row['n']} with "
                f"{report['cpu_count']} CPUs — it lost the cache-bound "
                f"regime it exists for")


def test_sharded_only_subset_records_no_classic_junk_rows():
    """``--engine sharded`` must not emit timing-free rows for classic cells.

    A timing-free row (no ``*_seconds`` keys, ``speedup: None``) written
    into BENCH_perf.json would break every recorded-baseline gate above.
    No cells are actually timed here (the large grid is disabled), so this
    is a pure bookkeeping check.
    """
    from bench_perf import run_benchmark
    report = run_benchmark(repetitions=1, engines=["sharded"],
                           include_large=False)
    assert report["rows"] == []
    assert report["headline"] is None


def test_fresh_measurement_within_recorded_baseline():
    if os.environ.get("REPRO_PERF_STRICT") != "1":
        pytest.skip("strict wall-clock comparison is opt-in (REPRO_PERF_STRICT=1)")
    report = load_recorded_perf()
    if report is None:
        pytest.skip("BENCH_perf.json not recorded yet")
    for label, spec_cls, args, n, t in SMOKE_CELLS:
        recorded = recorded_perf_row(report, label, n, t)
        if recorded is None or "fast_seconds" not in recorded:
            continue
        scenario = worst_case_scenarios(n, t)[0]
        fresh = min(_run(spec_cls, args, n, t, "fast", scenario)[1]
                    for _ in range(3))
        assert fresh <= 1.5 * recorded["fast_seconds"], (
            f"{label} at (n={n}, t={t}): fresh fast-engine time {fresh:.4f}s "
            f"exceeds 1.5x the recorded baseline {recorded['fast_seconds']}s")
