"""E9 — baseline comparison.

Places the paper's algorithms next to the original Pease–Shostak–Lamport
algorithm, the Berman–Garay–Perry phase king, and the authenticated
Dolev–Strong protocol on identical scenarios: rounds, largest message, and
whether agreement held everywhere.  It also checks the equivalence claim that
the (simplified) Exponential Algorithm behaves exactly like PSL.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.experiments import experiment_baselines


def test_baseline_comparison_table(benchmark):
    rows = run_once(benchmark, lambda: experiment_baselines(n=13, t=3))
    print()
    print(format_table(rows, title="E9 — baselines (n=13, worst-case scenarios)"))
    by_name = {row["protocol"]: row for row in rows}
    assert all(row["all_scenarios_agree"] for row in rows)
    # The exponential algorithms carry the largest messages; phase king and
    # Dolev–Strong the smallest; Algorithm C sits at O(n).
    assert by_name["exponential"]["max_message_entries"] == \
        by_name["psl-om"]["max_message_entries"]
    assert by_name["phase-king"]["max_message_entries"] == 1
    assert by_name["algorithm-c"]["max_message_entries"] <= 13
    assert (by_name["exponential"]["max_message_entries"]
            > by_name["algorithm-c"]["max_message_entries"])


def test_psl_equivalence(benchmark):
    """The simplification claim of Section 3: same decisions and costs as PSL."""
    from repro.baselines import PeaseShostakLamportSpec
    from repro.core.exponential import ExponentialSpec
    from repro.core.protocol import ProtocolConfig
    from repro.experiments.workloads import standard_scenarios
    from repro.runtime.simulation import run_agreement

    def run():
        config = ProtocolConfig(n=7, t=2, initial_value=1)
        rows = []
        for scenario in standard_scenarios(7, 2):
            psl = run_agreement(PeaseShostakLamportSpec(), config, scenario.faulty,
                                scenario.adversary())
            exp = run_agreement(ExponentialSpec(), config, scenario.faulty,
                                scenario.adversary())
            rows.append({
                "scenario": scenario.name,
                "psl_decision": psl.decision_value,
                "exponential_decision": exp.decision_value,
                "psl_max_entries": psl.metrics.max_message_entries(),
                "exponential_max_entries": exp.metrics.max_message_entries(),
            })
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(rows, title="E9 — PSL vs the (modified) Exponential Algorithm"))
    assert all(row["psl_decision"] == row["exponential_decision"] for row in rows)
    assert all(row["psl_max_entries"] == row["exponential_max_entries"]
               for row in rows)
