"""E1 — Theorem 1 (Main Theorem): the hybrid algorithm.

Regenerates the Main Theorem's claim for a sweep of block parameters ``b``:
round count ``k_AB + k_BC + (t − t_AC) + 1`` (asymptotically
``t + O(t/b) + O(√t)``), message size ``O(n^b)``, and agreement under the
worst-case adversary battery even though Algorithms B and C alone could not
tolerate ``t`` faults.
"""

from conftest import run_once

from repro.analysis import format_table, main_theorem_round_formula
from repro.experiments import experiment_theorem1


def test_theorem1_hybrid_table(benchmark):
    rows = run_once(benchmark,
                    lambda: experiment_theorem1(n=13, t=4, b_values=(3, 4)))
    print()
    print(format_table(rows, title="E1 / Theorem 1 — hybrid algorithm (n=13, t=4)"))
    assert rows
    for row in rows:
        assert row["all_scenarios_agree"]
        assert row["measured_rounds"] <= row["rounds_bound"]
        assert row["measured_max_entries"] <= row["max_message_entries_bound"]
        # The constructive round count decomposes into the three phases.
        assert row["k_AB"] + row["k_BC"] + row["c_rounds"] == row["rounds_bound"]


def test_theorem1_round_formula_consistency(benchmark):
    def check():
        rows = []
        for n, t in ((13, 4), (16, 5), (31, 10), (61, 20)):
            for b in range(3, min(t, 6) + 1):
                from repro.core.hybrid import hybrid_rounds
                rows.append({
                    "n": n, "t": t, "b": b,
                    "constructive_rounds": hybrid_rounds(n, t, b),
                    "closed_form": main_theorem_round_formula(n, t, b),
                })
        return rows

    rows = run_once(benchmark, check)
    print()
    print(format_table(rows, title="E1 — constructive vs closed-form round count"))
    assert all(row["constructive_rounds"] == row["closed_form"] for row in rows)
