"""E6 — the rounds vs message-length trade-off (the Coan comparison).

The introduction and Section 4 claim that Algorithms A and B achieve the same
rounds-to-message-length trade-off as Coan's families while avoiding their
exponential local computation.  This benchmark regenerates the trade-off
curve at a fixed ``(n, t)`` over a sweep of ``b`` and checks the three claims:
identical round curves, identical message budgets, diverging local
computation.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.experiments import experiment_tradeoff


def test_tradeoff_curve_table(benchmark):
    rows = run_once(benchmark,
                    lambda: experiment_tradeoff(n=31, t=10, b_values=(3, 4, 5, 6, 8)))
    print()
    print(format_table(rows, title="E6 — rounds vs message length (n=31, t=10)"))
    feasible = [row for row in rows if row["rounds_A"] is not None]
    assert feasible
    # 1. Ours and Coan's round curves coincide (that is the paper's claim).
    assert all(row["rounds_A"] == row["rounds_coan"] for row in feasible)
    # 2. Rounds fall toward t + O(1) as the message budget grows.
    rounds = [row["rounds_A"] for row in feasible]
    assert rounds == sorted(rounds, reverse=True)
    assert rounds[-1] < rounds[0]
    # 3. Coan's local computation diverges from ours (exponential vs polynomial).
    assert all(row["local_comp_coan"] > 100 * row["local_comp_A"]
               for row in feasible)
    # 4. The hybrid never needs more rounds than Algorithm A at the same b.
    assert all(row["rounds_hybrid"] <= row["rounds_A"] for row in feasible
               if row["rounds_hybrid"] is not None)


def test_message_budget_grows_with_b(benchmark):
    rows = run_once(benchmark,
                    lambda: experiment_tradeoff(n=61, t=20, b_values=(3, 4, 5, 6)))
    print()
    print(format_table(rows, title="E6 — message budget vs b (n=61, t=20)"))
    budgets = [row["message_entries(O(n^b))"] for row in rows]
    assert budgets == sorted(budgets)
    assert budgets[-1] > budgets[0]
