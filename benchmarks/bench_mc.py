"""MC — Monte-Carlo campaign throughput per executor backend.

The acceptance claim of ``repro mc`` is scale: a 10⁵–10⁶-trial campaign in
flat memory.  The number that decides how long that takes is **runs per
second**, so this benchmark streams the same seeded campaign — the
headline cell, Exponential at ``n=13, t=4`` under the two-faced adversary
with randomized fault placement — through the serial, pool, and sharded
executors and records each backend's throughput.

Running ``python benchmarks/bench_mc.py`` merges an ``"mc"`` section into
``BENCH_perf.json`` (every other section — the engine table, the serve
latencies — is left untouched), so the campaign-throughput trajectory
stays attributable alongside the rest of the recording.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.stats import McCell, McSpec, run_mc

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

#: The acceptance-criterion cell, matching bench_perf's headline.
HEADLINE = ("exponential", 13, 4)

#: Trials per backend: enough to amortize pool/sharded worker spawn, small
#: enough that the whole benchmark stays under a couple of minutes.
TRIALS = 2000
CHUNK_SIZE = 250

BACKENDS = (
    ("serial", {}),
    ("pool", {}),
    ("sharded", {}),
)


def campaign(executor: str, executor_params: dict) -> McSpec:
    protocol, n, t = HEADLINE
    return McSpec(
        cells=(McCell(protocol=protocol, n=n, t=t, adversary="two-faced"),),
        trials=TRIALS, sweep_seed=0, executor=executor,
        executor_params=executor_params, chunk_size=CHUNK_SIZE)


def main() -> None:
    protocol, n, t = HEADLINE
    section = {"protocol": protocol, "n": n, "t": t,
               "adversary": "two-faced", "trials": TRIALS,
               "chunk_size": CHUNK_SIZE, "backends": {}}
    reference_state = None
    for name, params in BACKENDS:
        result = run_mc(campaign(name, params))
        assert result.ok, f"{name}: {result.problems}"
        if reference_state is None:
            reference_state = result.state
        else:
            # Throughput must not buy a different answer: every backend
            # aggregates to bit-identical state.
            assert result.state == reference_state, (
                f"{name} state diverged from serial")
        section["backends"][name] = {
            "runs_per_second": round(result.runs_per_second, 1),
            "elapsed_seconds": round(result.elapsed_seconds, 3),
        }
        print(f"{name:>8}: {result.runs_per_second:8.1f} runs/s "
              f"({result.elapsed_seconds:.2f}s)")
    recording = {}
    if BENCH_PATH.exists():
        recording = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    recording["mc"] = section
    BENCH_PATH.write_text(json.dumps(recording, indent=2) + "\n",
                          encoding="utf-8")
    print(f"wrote the mc section of {BENCH_PATH}")


if __name__ == "__main__":
    main()
