"""E8 — the dominance claim: the hybrid versus the algorithms it is built from.

The paper: "we obtain a hybrid algorithm that dominates all our others".
This benchmark compares the hybrid's round count against Algorithm A at the
same resilience and message budget (a sweep of ``b`` and ``t``), and records
by how much it wins.  At ``b = 3`` the hybrid always wins or ties; for larger
``b`` it may concede a single round to the constant of its final partial
blocks (see EXPERIMENTS.md).
"""

from conftest import run_once

from repro.analysis import format_table
from repro.core.algorithm_a import algorithm_a_resilience
from repro.experiments import experiment_dominance


def test_dominance_table(benchmark):
    def table():
        rows = []
        for n in (31, 61, 100):
            t = algorithm_a_resilience(n)
            rows.extend(experiment_dominance(n=n, t=t, b_values=(3, 4, 5, 6)))
        return rows

    rows = run_once(benchmark, table)
    print()
    print(format_table(rows, title="E8 — hybrid vs Algorithm A round counts"))
    assert rows
    # The hybrid's saving grows with t at fixed b = 3.
    b3 = [row for row in rows if row["b"] == 3]
    savings = [row["saving"] for row in b3]
    assert savings == sorted(savings)
    assert all(saving >= 0 for saving in savings)
    assert savings[-1] > 0
    # And it never loses more than the one-round block constant anywhere.
    assert all(row["saving"] >= -1 for row in rows)


def test_dominance_holds_in_simulation(benchmark):
    """Measured (not just analytic) rounds: run both algorithms on the same
    worst-case scenarios and compare the executed round counts."""
    from repro.core.algorithm_a import AlgorithmASpec, algorithm_a_rounds
    from repro.core.hybrid import HybridSpec, hybrid_rounds
    from repro.core.protocol import ProtocolConfig
    from repro.experiments.workloads import worst_case_scenarios
    from repro.runtime.simulation import run_agreement

    def run():
        n, t, b = 16, 5, 3
        config = ProtocolConfig(n=n, t=t, initial_value=1)
        rows = []
        for scenario in worst_case_scenarios(n, t):
            a_result = run_agreement(AlgorithmASpec(b), config, scenario.faulty,
                                     scenario.adversary())
            h_result = run_agreement(HybridSpec(b), config, scenario.faulty,
                                     scenario.adversary())
            rows.append({
                "scenario": scenario.name,
                "rounds_A": a_result.rounds,
                "rounds_hybrid": h_result.rounds,
                "agree_A": a_result.agreement,
                "agree_hybrid": h_result.agreement,
            })
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(rows, title="E8 — measured rounds, n=16, t=5, b=3"))
    assert all(row["agree_A"] and row["agree_hybrid"] for row in rows)
    assert all(row["rounds_hybrid"] <= row["rounds_A"] for row in rows)
