"""E4 — Theorem 4: Algorithm C (the Dolev–Reischuk–Strong adaptation).

Regenerates the Theorem 4 row across ``n``: rounds exactly ``t + 1``, messages
of ``O(n)`` values, local computation tracking ``O(n^2.5)``, at resilience
``t_C ≈ √(n/2)``.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.core.algorithm_c import algorithm_c_resilience
from repro.experiments import experiment_theorem4


def test_theorem4_algorithm_c_table(benchmark):
    rows = run_once(benchmark, lambda: experiment_theorem4((14, 20)))
    print()
    print(format_table(rows, title="E4 / Theorem 4 — Algorithm C"))
    assert rows
    for row in rows:
        assert row["all_scenarios_agree"]
        assert row["measured_rounds"] == row["rounds_bound"] == row["t"] + 1
        assert row["measured_max_entries"] <= row["n"]


def test_theorem4_resilience_tracks_sqrt_n_over_2(benchmark):
    def table():
        rows = []
        for n in (8, 18, 32, 50, 72, 98, 128, 200):
            t = algorithm_c_resilience(n)
            rows.append({"n": n, "t_C": t, "sqrt(n/2)": round((n / 2) ** 0.5, 2)})
        return rows

    rows = run_once(benchmark, table)
    print()
    print(format_table(rows, title="E4 — Algorithm C resilience vs √(n/2)"))
    for row in rows:
        assert abs(row["t_C"] - row["sqrt(n/2)"]) <= 2.0
