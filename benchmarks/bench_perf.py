"""Perf — end-to-end wall-clock of the flat-array EIG engine vs the seed engine.

Unlike the table benchmarks (which count abstract units), this benchmark
measures *interpreter* time: one full ``run_agreement`` per cell, under the
worst-case equivocating-source adversary, once with the ``"fast"`` engine
(interned sequences, flat level-major buffers, batched resolve, by-reference
level messages) and once with the ``"reference"`` engine (the seed's
dict-of-tuples implementation, kept verbatim as the executable
specification).

Running ``python benchmarks/bench_perf.py`` writes ``BENCH_perf.json`` at the
repository root with per-cell timings and speedups plus the headline cell
(Exponential at ``n=13, t=4``), which is the acceptance gate for the engine:
it must be at least 5× faster end-to-end than the reference.  The perf smoke
test (``benchmarks/test_perf_smoke.py``) re-checks a small grid against this
recording.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.algorithm_a import AlgorithmASpec
from repro.core.algorithm_b import AlgorithmBSpec
from repro.core.algorithm_c import AlgorithmCSpec
from repro.core.engine import use_engine
from repro.core.exponential import ExponentialSpec
from repro.core.hybrid import HybridSpec
from repro.core.protocol import ProtocolConfig, ProtocolSpec
from repro.experiments.workloads import worst_case_scenarios
from repro.runtime.simulation import run_agreement

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

#: The acceptance-criterion cell: Exponential Information Gathering at the
#: largest (n, t) the seed engine handles in around a second.
HEADLINE = ("exponential", 13, 4)

#: (label, spec factory, [(n, t), ...]) — every algorithm family of the paper.
CELLS: List[Tuple[str, type, tuple, List[Tuple[int, int]]]] = [
    ("exponential", ExponentialSpec, (), [(7, 2), (10, 3), (13, 4)]),
    ("algorithm-a(b=3)", AlgorithmASpec, (3,), [(10, 3), (13, 4)]),
    ("algorithm-b(b=2)", AlgorithmBSpec, (2,), [(9, 2), (13, 3)]),
    ("algorithm-c", AlgorithmCSpec, (), [(14, 2), (20, 3)]),
    ("hybrid(b=3)", HybridSpec, (3,), [(10, 3), (13, 4)]),
]


def time_run(spec: ProtocolSpec, n: int, t: int, engine: str,
             repetitions: int = 3) -> Tuple[float, object]:
    """Best-of-*repetitions* wall-clock of one run under *engine*.

    Returns ``(seconds, decision_value)`` so callers can cross-check that
    both engines decided identically.
    """
    scenario = worst_case_scenarios(n, t)[0]
    config = ProtocolConfig(n=n, t=t, initial_value=1)
    best = float("inf")
    decision = None
    for _ in range(repetitions):
        with use_engine(engine):
            start = time.perf_counter()
            result = run_agreement(spec, config, scenario.faulty,
                                   scenario.adversary())
            elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        if not result.agreement:
            raise AssertionError(
                f"{spec.name} at (n={n}, t={t}) violated agreement under "
                f"{scenario.name} with engine {engine!r}")
        decision = result.decision_value
    return best, decision


def run_benchmark(repetitions: int = 3,
                  cells=CELLS) -> Dict[str, object]:
    """Measure every cell under both engines and return the report dict."""
    rows: List[Dict[str, object]] = []
    headline: Optional[Dict[str, object]] = None
    for label, spec_cls, args, grid in cells:
        for n, t in grid:
            spec_fast, spec_ref = spec_cls(*args), spec_cls(*args)
            fast_s, fast_decision = time_run(spec_fast, n, t, "fast",
                                             repetitions)
            ref_s, ref_decision = time_run(spec_ref, n, t, "reference",
                                           repetitions)
            if fast_decision != ref_decision:
                raise AssertionError(
                    f"{label} at (n={n}, t={t}): engines decided differently "
                    f"({fast_decision!r} vs {ref_decision!r})")
            row = {
                "protocol": label,
                "n": n,
                "t": t,
                "scenario": worst_case_scenarios(n, t)[0].name,
                "fast_seconds": round(fast_s, 6),
                "reference_seconds": round(ref_s, 6),
                "speedup": round(ref_s / fast_s, 2) if fast_s > 0 else None,
            }
            rows.append(row)
            if (label, n, t) == HEADLINE:
                headline = row
            print(f"{label:18s} n={n:3d} t={t}  "
                  f"reference {ref_s:8.3f}s   fast {fast_s:8.3f}s   "
                  f"speedup {row['speedup']:6.1f}x")
    report = {
        "benchmark": "bench_perf",
        "description": ("End-to-end run_agreement wall-clock, worst-case "
                        "equivocating-source scenario, best of "
                        f"{repetitions} repetitions per engine."),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "headline": headline,
        "rows": rows,
    }
    return report


def main() -> None:
    report = run_benchmark()
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
    headline = report["headline"]
    print(f"\nwrote {BENCH_PATH}")
    if headline is not None:
        print(f"headline: Exponential n={headline['n']} t={headline['t']} "
              f"speedup {headline['speedup']}x "
              f"({'PASS' if headline['speedup'] >= 5 else 'FAIL'} vs the 5x gate)")


if __name__ == "__main__":
    main()
