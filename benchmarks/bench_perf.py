"""Perf — end-to-end wall-clock of the EIG engines vs the seed engine.

Unlike the table benchmarks (which count abstract units), this benchmark
measures *interpreter* time: one full ``run_agreement`` per cell, under the
worst-case equivocating-source adversary, once per engine:

* ``"reference"`` — the seed's dict-of-tuples implementation, kept verbatim
  as the executable specification (the before/after baseline);
* ``"fast"`` — interned sequences, flat level-major buffers, batched resolve,
  by-reference level messages;
* ``"numpy"`` — the flat layout on small-int code ndarrays with vectorized
  gathering, per-level ``bincount`` conversions and slot-wise adversary
  rewrites.  Timed only when numpy is importable (the engine is optional).

A fourth timeable mode is ``"batched"`` — not a per-processor engine but the
whole-run executor (``run_agreement(..., batched=True)``): every correct
processor (and every adversary shadow) steps as one 2-D numpy kernel per
round.  It is timed only on the cells whose spec it actually accelerates
(``repro.runtime.batched.batched_supported`` — the EIG specs; Algorithm C,
the hybrid and the baselines fall back to the per-processor driver).

Running ``python benchmarks/bench_perf.py`` writes ``BENCH_perf.json`` at the
repository root with per-cell timings and speedups, run metadata
(python/numpy versions, platform, CPU count, engine list) so the perf
trajectory across PRs stays attributable, and the headline cell (Exponential
at ``n=13, t=4``), which carries the acceptance gates: the fast engine must
be ≥ 5× the reference end-to-end, the numpy engine ≥ 2× the fast engine, and
the batched executor ≥ 1.5× the per-processor numpy engine — while at the
small ``n=7, t=2`` Exponential cell batched must not lose to the fast engine
(the small-level crossover).  The perf smoke test
(``benchmarks/test_perf_smoke.py``) re-checks a small grid against this
recording.  Use ``--engine`` (repeatable) to time a subset of engines.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.algorithm_a import AlgorithmASpec
from repro.core.algorithm_b import AlgorithmBSpec
from repro.core.algorithm_c import AlgorithmCSpec
from repro.core.engine import (BATCHED, ENGINES, numpy_available,
                               use_engine, validate_engine)
from repro.core.exponential import ExponentialSpec
from repro.core.hybrid import HybridSpec
from repro.core.protocol import ProtocolConfig, ProtocolSpec
from repro.experiments.workloads import worst_case_scenarios
from repro.runtime.batched import batched_supported
from repro.runtime.simulation import run_agreement

#: The small-``n`` cell on which batched must not lose to the fast engine.
CROSSOVER = ("exponential", 7, 2)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

#: The acceptance-criterion cell: Exponential Information Gathering at the
#: largest (n, t) the seed engine handles in around a second.
HEADLINE = ("exponential", 13, 4)

#: The sharded run executor, timed as a fifth mode on the large-``n`` cells.
SHARDED = "sharded"

#: Shard count the recording uses.  Two shards split the row stack's working
#: set in half — the cache relief is what wins the large-``n`` cells even on
#: a single-CPU recording box; more shards mainly add claims-shipping cost
#: until real cores absorb them.
SHARDED_SHARDS = 2

#: (label, spec factory, [(n, t), ...]) — every algorithm family of the paper.
CELLS: List[Tuple[str, type, tuple, List[Tuple[int, int]]]] = [
    ("exponential", ExponentialSpec, (), [(7, 2), (10, 3), (13, 4)]),
    ("algorithm-a(b=3)", AlgorithmASpec, (3,), [(10, 3), (13, 4)]),
    ("algorithm-b(b=2)", AlgorithmBSpec, (2,), [(9, 2), (13, 3)]),
    ("algorithm-c", AlgorithmCSpec, (), [(14, 2), (20, 3)]),
    ("hybrid(b=3)", HybridSpec, (3,), [(10, 3), (13, 4)]),
]

#: The large-``n`` grid past the classic recording (reference is skipped
#: there — the seed engine needs minutes per run at these sizes).  These are
#: the cells the sharded backend exists for: the per-level stacks outgrow
#: one interpreter's cache (the ``n ≥ 16`` regime PERFORMANCE.md flags).
LARGE_CELLS: List[Tuple[str, type, tuple, List[Tuple[int, int]]]] = [
    ("exponential", ExponentialSpec, (), [(15, 4), (16, 5)]),
]

#: Engines timed on the large cells (everything but the seed engine).
LARGE_ENGINES = ["fast", "numpy", BATCHED, SHARDED]

#: Per-cell wall-clock budget the recording asserts for the large cells:
#: every mode timed there must finish one run inside this many seconds —
#: the same budget every classic cell trivially meets.
LARGE_CELL_BUDGET_SECONDS = 60.0


def default_engines() -> List[str]:
    """Every mode timeable in this process (numpy and batched need numpy)."""
    if numpy_available():
        return ["reference", "fast", "numpy", BATCHED]
    return ["reference", "fast"]


def time_run(spec: ProtocolSpec, n: int, t: int, engine: str,
             repetitions: int = 5) -> Tuple[float, object]:
    """Best-of-*repetitions* wall-clock of one run under *engine*.

    One untimed warm-up run precedes the timed repetitions so every engine
    is measured with its lazily built tables (interned sequence indexes,
    ndarray twins, codec, ufunc dispatch) in place — otherwise whichever
    cell happens to run first in the process pays those one-time costs in
    its recording.

    Returns ``(seconds, decision_value)`` so callers can cross-check that
    every engine decided identically.
    """
    scenario = worst_case_scenarios(n, t)[0]
    config = ProtocolConfig(n=n, t=t, initial_value=1)
    batched = engine == BATCHED

    def one_run():
        if engine == SHARDED:
            from repro.runtime.sharding import run_sharded_if_supported
            result = run_sharded_if_supported(
                spec, config, scenario.faulty, scenario.adversary(), 0,
                shards=SHARDED_SHARDS)
            if result is None:
                raise AssertionError(
                    f"{spec.name} at (n={n}, t={t}) is not sharded-eligible")
            return result
        with use_engine("numpy" if batched else engine):
            return run_agreement(spec, config, scenario.faulty,
                                 scenario.adversary(), batched=batched)

    best = float("inf")
    decision = None
    one_run()  # untimed warm-up
    for _ in range(repetitions):
        start = time.perf_counter()
        result = one_run()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        if not result.agreement:
            raise AssertionError(
                f"{spec.name} at (n={n}, t={t}) violated agreement under "
                f"{scenario.name} with engine {engine!r}")
        decision = result.decision_value
    return best, decision


def _speedup(baseline: Optional[float], candidate: Optional[float]):
    if baseline is None or candidate is None or candidate <= 0:
        return None
    return round(baseline / candidate, 2)


def _time_cell(label: str, spec_cls, args, n: int, t: int,
               cell_engines: Sequence[str],
               repetitions: int) -> Dict[str, object]:
    """Time one (label, n, t) cell under every engine and build its row."""
    seconds: Dict[str, float] = {}
    decisions: Dict[str, object] = {}
    for engine in cell_engines:
        seconds[engine], decisions[engine] = time_run(
            spec_cls(*args), n, t, engine, repetitions)
    if len(set(decisions.values())) > 1:
        raise AssertionError(
            f"{label} at (n={n}, t={t}): engines decided differently "
            f"({decisions!r})")
    reference_s = seconds.get("reference")
    fast_s = seconds.get("fast")
    numpy_s = seconds.get("numpy")
    batched_s = seconds.get(BATCHED)
    sharded_s = seconds.get(SHARDED)
    row: Dict[str, object] = {
        "protocol": label,
        "n": n,
        "t": t,
        "scenario": worst_case_scenarios(n, t)[0].name,
    }
    for engine in cell_engines:
        row[f"{engine}_seconds"] = round(seconds[engine], 6)
    row.update({
        # "speedup" stays fast-vs-reference: it is the recorded gate
        # the perf smoke test asserts on.
        "speedup": _speedup(reference_s, fast_s),
        "numpy_speedup": _speedup(reference_s, numpy_s),
        "numpy_vs_fast": _speedup(fast_s, numpy_s),
    })
    if batched_s is not None:
        row.update({
            "batched_speedup": _speedup(reference_s, batched_s),
            "batched_vs_fast": _speedup(fast_s, batched_s),
            "batched_vs_numpy": _speedup(numpy_s, batched_s),
        })
    if sharded_s is not None:
        row.update({
            "sharded_vs_fast": _speedup(fast_s, sharded_s),
            "sharded_vs_numpy": _speedup(numpy_s, sharded_s),
            "sharded_vs_batched": _speedup(batched_s, sharded_s),
        })
    timings = "   ".join(f"{engine} {seconds[engine]:8.3f}s"
                         for engine in cell_engines)
    print(f"{label:18s} n={n:3d} t={t}  {timings}")
    return row


def run_benchmark(repetitions: int = 5, cells=CELLS,
                  engines: Optional[Sequence[str]] = None,
                  include_large: bool = True) -> Dict[str, object]:
    """Measure every cell under every requested engine and return the report.

    With the default engine list, the large-``n`` grid (:data:`LARGE_CELLS`)
    is timed too, under every non-reference mode including the sharded run
    executor; the recording asserts each of those cells completes within
    :data:`LARGE_CELL_BUDGET_SECONDS`.  An explicit ``--engine`` subset
    skips the large grid unless ``sharded`` is among the requested modes.
    """
    requested = list(engines) if engines is not None else None
    engines = requested if requested is not None else default_engines()
    rows: List[Dict[str, object]] = []
    headline: Optional[Dict[str, object]] = None
    for label, spec_cls, args, grid in cells:
        for n, t in grid:
            cell_engines = [e for e in engines if e != SHARDED]
            if BATCHED in cell_engines and not batched_supported(
                    spec_cls(*args), ProtocolConfig(n=n, t=t,
                                                    initial_value=1)):
                # Batched falls back to the per-processor driver here;
                # recording its time would just duplicate the numpy column.
                cell_engines.remove(BATCHED)
            if not cell_engines:
                # e.g. --engine sharded alone: nothing to time on the
                # classic grid — a timing-free row would corrupt the record.
                continue
            row = _time_cell(label, spec_cls, args, n, t, cell_engines,
                             repetitions)
            rows.append(row)
            if (label, n, t) == HEADLINE:
                headline = row

    large_budget = None
    run_large = (include_large and numpy_available()
                 and (requested is None or SHARDED in requested))
    if run_large:
        large_budget = LARGE_CELL_BUDGET_SECONDS
        large_engines = (LARGE_ENGINES if requested is None
                         else [e for e in requested if e in LARGE_ENGINES])
        for label, spec_cls, args, grid in LARGE_CELLS:
            for n, t in grid:
                row = _time_cell(label, spec_cls, args, n, t, large_engines,
                                 repetitions)
                over = {engine: row[f"{engine}_seconds"]
                        for engine in large_engines
                        if row[f"{engine}_seconds"] > large_budget}
                if over:
                    raise AssertionError(
                        f"{label} at (n={n}, t={t}) blew the "
                        f"{large_budget:.0f}s large-cell budget: {over}")
                rows.append(row)

    report = {
        "benchmark": "bench_perf",
        "description": ("End-to-end run_agreement wall-clock, worst-case "
                        "equivocating-source scenario, best of "
                        f"{repetitions} repetitions per engine."),
        "python": sys.version.split()[0],
        "numpy": _numpy_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "engines": engines + ([SHARDED] if run_large
                              and SHARDED not in engines else []),
        "large_cell_budget_seconds": large_budget,
        "sharded_shards": SHARDED_SHARDS if run_large else None,
        "headline": headline,
        "rows": rows,
    }
    return report


def _numpy_version() -> Optional[str]:
    """The numpy version string, or ``None`` on a bare image."""
    if not numpy_available():
        return None
    from repro.core.npsupport import get_numpy
    return get_numpy().__version__


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--engine", action="append",
                        choices=tuple(ENGINES) + (BATCHED, SHARDED),
                        default=None, dest="engines",
                        help="engine/mode to time (repeatable; default: "
                             "every mode available in this process; "
                             "'batched' is the whole-run executor, "
                             "'sharded' the multi-process row-sharded "
                             "backend timed on the large-n cells)")
    parser.add_argument("--repetitions", type=int, default=5)
    parser.add_argument("--skip-large", action="store_true",
                        help="skip the large-n grid (batched + sharded "
                             "cells beyond the classic recording)")
    parser.add_argument("--no-write", action="store_true",
                        help="print timings without rewriting BENCH_perf.json")
    args = parser.parse_args(argv)
    if args.engines:
        try:
            for engine in args.engines:
                validate_engine("numpy" if engine in (BATCHED, SHARDED)
                                else engine)
        except ValueError as exc:
            parser.error(str(exc))
    report = run_benchmark(repetitions=args.repetitions, engines=args.engines,
                           include_large=not args.skip_large)
    if not args.no_write:
        if report["headline"] is None:
            # The perf smoke gate reads the headline cell out of the
            # recording; an engine subset that never times it must not
            # replace BENCH_perf.json with a gate-breaking partial record.
            parser.error(
                "this engine subset records no headline cell; include a "
                "classic engine (reference/fast/numpy/batched) or pass "
                "--no-write")
        if BENCH_PATH.exists():
            # Other recorders (bench_serve.py's "serve" section) merge into
            # the same file; carry their sections across the rewrite.
            previous = json.loads(BENCH_PATH.read_text())
            for key, value in previous.items():
                report.setdefault(key, value)
        BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {BENCH_PATH}")
    headline = report["headline"]
    if headline is not None:
        fast = headline.get("speedup")
        vs_fast = headline.get("numpy_vs_fast")
        vs_numpy = headline.get("batched_vs_numpy")
        if fast is not None:
            print(f"headline: Exponential n={headline['n']} t={headline['t']} "
                  f"fast speedup {fast}x "
                  f"({'PASS' if fast >= 5 else 'FAIL'} vs the 5x gate)")
        if vs_fast is not None:
            print(f"headline: numpy vs fast {vs_fast}x "
                  f"({'PASS' if vs_fast >= 2 else 'FAIL'} vs the 2x gate)")
        if vs_numpy is not None:
            print(f"headline: batched vs numpy {vs_numpy}x "
                  f"({'PASS' if vs_numpy >= 1.5 else 'FAIL'} vs the 1.5x "
                  f"gate)")
    for row in report["rows"]:
        if (row["protocol"], row["n"], row["t"]) == CROSSOVER:
            crossover = row.get("batched_vs_fast")
            if crossover is not None:
                print(f"crossover: Exponential n={row['n']} t={row['t']} "
                      f"batched vs fast {crossover}x "
                      f"({'PASS' if crossover >= 1 else 'FAIL'} vs the "
                      f"no-crossover gate)")
    budget = report.get("large_cell_budget_seconds")
    if budget is not None:
        for row in report["rows"]:
            if "sharded_seconds" in row:
                ratio = row.get("sharded_vs_batched")
                versus = (f", {ratio}x vs batched" if ratio is not None
                          else "")
                print(f"large cell: {row['protocol']} n={row['n']} "
                      f"t={row['t']} sharded {row['sharded_seconds']:.3f}s "
                      f"(within the {budget:.0f}s budget{versus})")


if __name__ == "__main__":
    main()
